//! Finite-model entailment checking.
//!
//! The `Cons` rule and every verification condition produced by the verifier
//! require discharging semantic entailments `P |= Q` (Def. 3:
//! `∀S. P(S) ⇒ Q(S)`). Entailment between hyper-assertions is undecidable in
//! general; following the substitution policy of `DESIGN.md` we *validate*
//! entailments over finite universes of candidate extended states:
//!
//! * **exhaustively** over all subsets up to a size bound when the universe
//!   is small enough, and
//! * by **random sampling** of subsets otherwise.
//!
//! A reported counterexample is always a genuine refutation; a pass is
//! evidence relative to the chosen universe (exactly like the bounded
//! model-checking baseline the paper cites for HyperLTL).

use std::fmt;

use hhl_lang::rng::Rng;
use hhl_lang::{ExtState, StateSet, Store, Symbol, Value};

use crate::assertion::Assertion;
use crate::eval::{eval_assertion, EvalConfig};

/// A finite universe of candidate extended states over which entailments and
/// triple validity are checked.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Universe {
    /// The candidate states.
    pub states: Vec<ExtState>,
}

impl Universe {
    /// Builds a universe as the Cartesian product of per-variable domains:
    /// every combination of the given program-variable and logical-variable
    /// values yields one candidate state.
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_assert::Universe;
    /// use hhl_lang::Value;
    /// let u = Universe::product(
    ///     &[("h", vec![Value::Int(0), Value::Int(1)]), ("l", vec![Value::Int(0)])],
    ///     &[("t", vec![Value::Int(1), Value::Int(2)])],
    /// );
    /// assert_eq!(u.states.len(), 4); // 2 × 1 × 2
    /// ```
    pub fn product(pvars: &[(&str, Vec<Value>)], lvars: &[(&str, Vec<Value>)]) -> Universe {
        let mut programs = vec![Store::new()];
        for (name, dom) in pvars {
            let mut next = Vec::with_capacity(programs.len() * dom.len());
            for base in &programs {
                for v in dom {
                    next.push(base.with(*name, v.clone()));
                }
            }
            programs = next;
        }
        let mut logicals = vec![Store::new()];
        for (name, dom) in lvars {
            let mut next = Vec::with_capacity(logicals.len() * dom.len());
            for base in &logicals {
                for v in dom {
                    next.push(base.with(*name, v.clone()));
                }
            }
            logicals = next;
        }
        let mut states = Vec::with_capacity(programs.len() * logicals.len());
        for l in &logicals {
            for p in &programs {
                states.push(ExtState::new(l.clone(), p.clone()));
            }
        }
        Universe { states }
    }

    /// Builds a universe from explicit states.
    pub fn from_states<I: IntoIterator<Item = ExtState>>(states: I) -> Universe {
        Universe {
            states: states.into_iter().collect(),
        }
    }

    /// Program-variable-only product universe (no logical variables).
    pub fn program_product(pvars: &[(&str, Vec<Value>)]) -> Universe {
        Universe::product(pvars, &[])
    }

    /// Integer product universe: each named variable ranges over `lo..=hi`.
    pub fn int_cube(vars: &[&str], lo: i64, hi: i64) -> Universe {
        let doms: Vec<(&str, Vec<Value>)> = vars
            .iter()
            .map(|v| (*v, (lo..=hi).map(Value::Int).collect()))
            .collect();
        Universe::product(&doms, &[])
    }

    /// Tags every state with all combinations of logical values for `lvar`
    /// (e.g. execution tags `t ∈ {1, 2}` of §2.2).
    pub fn tag_logical(&self, lvar: &str, values: &[Value]) -> Universe {
        let mut states = Vec::with_capacity(self.states.len() * values.len());
        for st in &self.states {
            for v in values {
                states.push(st.with_logical(Symbol::new(lvar), v.clone()));
            }
        }
        Universe { states }
    }
}

/// Configuration of the entailment checker.
#[derive(Clone, Debug)]
pub struct EntailConfig {
    /// Largest subset size considered.
    pub max_subset_size: usize,
    /// Exhaustive enumeration is used while the subset count stays below
    /// this limit; otherwise sampling kicks in.
    pub exhaustive_limit: usize,
    /// Number of random subsets sampled when not exhaustive.
    pub samples: u32,
    /// RNG seed (checks are deterministic given the seed).
    pub seed: u64,
    /// Evaluator configuration.
    pub eval: EvalConfig,
}

impl Default for EntailConfig {
    fn default() -> EntailConfig {
        EntailConfig {
            max_subset_size: 4,
            exhaustive_limit: 20_000,
            samples: 400,
            seed: 0x4448_4C21, // "HHL!"
            eval: EvalConfig::default(),
        }
    }
}

const fn subset_count(n: usize, k: usize) -> usize {
    // Σ_{i≤k} C(n, i), saturating.
    let mut total: usize = 0;
    let mut i = 0;
    while i <= k {
        let mut c: usize = 1;
        let mut j = 0;
        while j < i {
            c = c.saturating_mul(n - j) / (j + 1);
            j += 1;
        }
        total = total.saturating_add(c);
        i += 1;
    }
    total
}

/// A refutation of an entailment or a triple: a set satisfying the premise
/// but not the conclusion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The offending set of initial states.
    pub set: StateSet,
    /// Human-readable context.
    pub context: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: counterexample set {}", self.context, self.set)
    }
}

/// The candidate subsets of the universe examined by the checkers:
/// exhaustive up to [`EntailConfig::max_subset_size`] when tractable,
/// seeded random samples otherwise. Exposed so the triple-validity checker
/// in `hhl-core` examines exactly the same search space.
pub fn candidate_sets(u: &Universe, cfg: &EntailConfig) -> Vec<StateSet> {
    let n = u.states.len();
    let k = cfg.max_subset_size.min(n);
    if subset_count(n, k) <= cfg.exhaustive_limit {
        let all: StateSet = u.states.iter().cloned().collect();
        all.subsets_up_to(k)
    } else {
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut out = vec![StateSet::new()];
        for _ in 0..cfg.samples {
            let size = rng.gen_range_inclusive(1, k as u64) as usize;
            let mut idx: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut idx);
            out.push(idx[..size].iter().map(|&i| u.states[i].clone()).collect());
        }
        out
    }
}

/// Checks `P |= Q` over the universe: every candidate subset satisfying `P`
/// must satisfy `Q`.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
///
/// # Examples
///
/// ```
/// use hhl_assert::{check_entailment, Assertion, EntailConfig, Universe};
/// use hhl_lang::Value;
/// let u = Universe::int_cube(&["x"], 0, 3);
/// let cfg = EntailConfig::default();
/// // low(x) |= ∀⟨φ1⟩,⟨φ2⟩. φ1(x) ≥ φ2(x) ∧ φ2(x) ≥ φ1(x) — holds.
/// let p = Assertion::low("x");
/// let q = Assertion::forall2(|a, b| {
///     use hhl_assert::HExpr;
///     Assertion::Atom(HExpr::PVar(a, "x".into()).ge(HExpr::PVar(b, "x".into())))
/// });
/// assert!(check_entailment(&p, &q, &u, &cfg).is_ok());
/// // ⊤ |= low(x) — refuted.
/// assert!(check_entailment(&Assertion::tt(), &p, &u, &cfg).is_err());
/// ```
pub fn check_entailment(
    p: &Assertion,
    q: &Assertion,
    u: &Universe,
    cfg: &EntailConfig,
) -> Result<(), Counterexample> {
    for s in candidate_sets(u, cfg) {
        if eval_assertion(p, &s, &cfg.eval) && !eval_assertion(q, &s, &cfg.eval) {
            return Err(Counterexample {
                set: s,
                context: format!("{p} |= {q}"),
            });
        }
    }
    Ok(())
}

/// Checks that two assertions agree on every candidate subset (used by the
/// WP-exactness property tests).
pub fn check_equivalent(
    p: &Assertion,
    q: &Assertion,
    u: &Universe,
    cfg: &EntailConfig,
) -> Result<(), Counterexample> {
    check_entailment(p, q, u, cfg)?;
    check_entailment(q, p, u, cfg)
}

/// Searches the universe for a set satisfying `p` (Thm. 5 needs satisfiable
/// strengthened preconditions).
pub fn find_satisfying(p: &Assertion, u: &Universe, cfg: &EntailConfig) -> Option<StateSet> {
    candidate_sets(u, cfg)
        .into_iter()
        .find(|s| eval_assertion(p, s, &cfg.eval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexpr::HExpr;

    #[test]
    fn universe_product_counts() {
        let u = Universe::int_cube(&["x", "y"], 0, 2);
        assert_eq!(u.states.len(), 9);
        let tagged = u.tag_logical("t", &[Value::Int(1), Value::Int(2)]);
        assert_eq!(tagged.states.len(), 18);
    }

    #[test]
    fn entailment_reflexive_and_monotone() {
        let u = Universe::int_cube(&["l"], 0, 2);
        let cfg = EntailConfig::default();
        let low = Assertion::low("l");
        assert!(check_entailment(&low, &low, &u, &cfg).is_ok());
        // low(l) |= ⊤ and ⊥ |= low(l)
        assert!(check_entailment(&low, &Assertion::tt(), &u, &cfg).is_ok());
        assert!(check_entailment(&Assertion::ff(), &low, &u, &cfg).is_ok());
    }

    #[test]
    fn counterexample_is_genuine() {
        let u = Universe::int_cube(&["l"], 0, 2);
        let cfg = EntailConfig::default();
        let err = check_entailment(&Assertion::tt(), &Assertion::low("l"), &u, &cfg).unwrap_err();
        // The witness set must itself violate low(l).
        assert!(!eval_assertion(&Assertion::low("l"), &err.set, &cfg.eval));
    }

    #[test]
    fn strengthening_preconditions() {
        // §2.2: low(l) ∧ ∃⟨φ1⟩,⟨φ2⟩. φ1(h) > 0 ∧ φ2(h) ≤ 0 entails low(l).
        let u = Universe::int_cube(&["l", "h"], -1, 1);
        let cfg = EntailConfig::default();
        let strong = Assertion::low("l").and(Assertion::exists2(|a, b| {
            Assertion::Atom(
                HExpr::PVar(a, Symbol::new("h"))
                    .gt(HExpr::int(0))
                    .and(HExpr::PVar(b, Symbol::new("h")).le(HExpr::int(0))),
            )
        }));
        assert!(check_entailment(&strong, &Assertion::low("l"), &u, &cfg).is_ok());
        assert!(check_entailment(&Assertion::low("l"), &strong, &u, &cfg).is_err());
    }

    #[test]
    fn find_satisfying_works() {
        let u = Universe::int_cube(&["h"], -1, 1);
        let cfg = EntailConfig::default();
        let p = Assertion::exists2(|a, b| {
            Assertion::Atom(HExpr::PVar(a, Symbol::new("h")).ne(HExpr::PVar(b, Symbol::new("h"))))
        });
        let s = find_satisfying(&p, &u, &cfg).expect("satisfiable");
        assert!(s.len() >= 2);
        assert!(find_satisfying(&Assertion::ff(), &u, &cfg).is_none());
    }

    #[test]
    fn sampling_mode_triggers_on_large_universes() {
        let u = Universe::int_cube(&["a", "b", "c"], 0, 9); // 1000 states
        let cfg = EntailConfig {
            max_subset_size: 3,
            exhaustive_limit: 1000,
            samples: 50,
            ..EntailConfig::default()
        };
        // ⊤ |= ⊤ passes even in sampling mode.
        assert!(check_entailment(&Assertion::tt(), &Assertion::tt(), &u, &cfg).is_ok());
        // ⊤ |= emp is refuted by any non-empty sample.
        assert!(check_entailment(&Assertion::tt(), &Assertion::emp(), &u, &cfg).is_err());
    }

    #[test]
    fn equivalence_check() {
        let u = Universe::int_cube(&["x"], 0, 2);
        let cfg = EntailConfig::default();
        // emp ≡ ∀⟨φ⟩. ⊥ by definition; also ≡ ¬(∃⟨φ⟩. ⊤).
        let not_exists = Assertion::not_emp().negate();
        assert!(check_equivalent(&Assertion::emp(), &not_exists, &u, &cfg).is_ok());
        assert!(check_equivalent(&Assertion::emp(), &Assertion::tt(), &u, &cfg).is_err());
    }
}
