//! A lightweight assertion simplifier.
//!
//! The syntactic transformations of §4 produce large but shallow formulas
//! (the Fig. 4 outline triples in size with every backward step). This
//! simplifier performs the rewrites a human applies silently when reading a
//! proof outline:
//!
//! * constant folding of closed hyper-expressions;
//! * boolean unit/absorption laws (`⊤ ∧ A = A`, `⊥ ∨ A = A`, …);
//! * pruning of quantifiers whose bodies are constant;
//! * double-negation elimination on atoms.
//!
//! Simplification is *validity-preserving*: `simplify(A)` evaluates exactly
//! like `A` on every state set (checked by the property tests).

use hhl_lang::{BinOp, UnOp, Value};

use crate::assertion::Assertion;
use crate::hexpr::HExpr;

/// Recursively folds closed sub-expressions to literals.
pub fn fold_hexpr(e: &HExpr) -> HExpr {
    match e {
        HExpr::Const(_) | HExpr::Val(_) | HExpr::PVar(_, _) | HExpr::LVar(_, _) => e.clone(),
        HExpr::Un(op, a) => {
            let a = fold_hexpr(a);
            if let HExpr::Const(v) = &a {
                HExpr::Const(op.apply(v))
            } else if let (UnOp::Not, HExpr::Un(UnOp::Not, inner)) = (op, &a) {
                // ¬¬e = e for boolean-valued e; safe because Not coerces.
                fold_hexpr(inner)
            } else {
                HExpr::un(*op, a)
            }
        }
        HExpr::Bin(op, a, b) => {
            let a = fold_hexpr(a);
            let b = fold_hexpr(b);
            match (&a, &b) {
                (HExpr::Const(x), HExpr::Const(y)) => HExpr::Const(op.apply(x, y)),
                // Arithmetic units.
                (HExpr::Const(Value::Int(0)), _) if *op == BinOp::Add => b,
                (_, HExpr::Const(Value::Int(0)))
                    if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Xor) =>
                {
                    a
                }
                (_, HExpr::Const(Value::Int(1))) if *op == BinOp::Mul => a,
                (HExpr::Const(Value::Int(1)), _) if *op == BinOp::Mul => b,
                // Boolean units.
                (HExpr::Const(Value::Bool(true)), _) if *op == BinOp::And => b,
                (_, HExpr::Const(Value::Bool(true))) if *op == BinOp::And => a,
                (HExpr::Const(Value::Bool(false)), _) if *op == BinOp::Or => b,
                (_, HExpr::Const(Value::Bool(false))) if *op == BinOp::Or => a,
                (HExpr::Const(Value::Bool(false)), _) if *op == BinOp::And => HExpr::bool(false),
                (_, HExpr::Const(Value::Bool(false))) if *op == BinOp::And => HExpr::bool(false),
                (HExpr::Const(Value::Bool(true)), _) if *op == BinOp::Or => HExpr::bool(true),
                (_, HExpr::Const(Value::Bool(true))) if *op == BinOp::Or => HExpr::bool(true),
                // Reflexive comparisons on identical syntax.
                _ if a == b && matches!(op, BinOp::Eq | BinOp::Le | BinOp::Ge) => HExpr::bool(true),
                _ if a == b && matches!(op, BinOp::Ne | BinOp::Lt | BinOp::Gt) => {
                    HExpr::bool(false)
                }
                _ => HExpr::bin(*op, a, b),
            }
        }
    }
}

fn truth(a: &Assertion) -> Option<bool> {
    match a {
        Assertion::Atom(HExpr::Const(v)) => Some(v.truthy()),
        _ => None,
    }
}

/// Simplifies an assertion (see module docs). Idempotent and
/// validity-preserving.
pub fn simplify(a: &Assertion) -> Assertion {
    match a {
        Assertion::Atom(e) => Assertion::Atom(fold_hexpr(e)),
        Assertion::Not(inner) => {
            let inner = simplify(inner);
            match truth(&inner) {
                Some(b) => Assertion::Atom(HExpr::bool(!b)),
                None => inner.negate(),
            }
        }
        Assertion::And(x, y) => {
            let x = simplify(x);
            let y = simplify(y);
            match (truth(&x), truth(&y)) {
                (Some(false), _) | (_, Some(false)) => Assertion::ff(),
                (Some(true), _) => y,
                (_, Some(true)) => x,
                _ => x.and(y),
            }
        }
        Assertion::Or(x, y) => {
            let x = simplify(x);
            let y = simplify(y);
            match (truth(&x), truth(&y)) {
                (Some(true), _) | (_, Some(true)) => Assertion::tt(),
                (Some(false), _) => y,
                (_, Some(false)) => x,
                _ => x.or(y),
            }
        }
        Assertion::ForallVal(v, body) => {
            let body = simplify(body);
            match truth(&body) {
                Some(b) => Assertion::Atom(HExpr::bool(b)),
                None => Assertion::forall_val(*v, body),
            }
        }
        Assertion::ExistsVal(v, body) => {
            let body = simplify(body);
            match truth(&body) {
                // ∃v. c ≡ c: the value domain is never empty.
                Some(b) => Assertion::Atom(HExpr::bool(b)),
                None => Assertion::exists_val(*v, body),
            }
        }
        Assertion::ForallState(p, body) => {
            let body = simplify(body);
            match truth(&body) {
                // ∀⟨φ⟩. ⊤ ≡ ⊤; ∀⟨φ⟩. ⊥ is emp — keep it.
                Some(true) => Assertion::tt(),
                _ => Assertion::forall_state(*p, body),
            }
        }
        Assertion::ExistsState(p, body) => {
            let body = simplify(body);
            match truth(&body) {
                // ∃⟨φ⟩. ⊥ ≡ ⊥; ∃⟨φ⟩. ⊤ is ¬emp — keep it.
                Some(false) => Assertion::ff(),
                _ => Assertion::exists_state(*p, body),
            }
        }
        Assertion::Otimes(x, y) => simplify(x).otimes(simplify(y)),
        Assertion::UnionOf(x) => Assertion::UnionOf(Box::new(simplify(x))),
        Assertion::Card {
            state,
            proj,
            op,
            bound,
        } => Assertion::Card {
            state: *state,
            proj: fold_hexpr(proj),
            op: *op,
            bound: fold_hexpr(bound),
        },
        Assertion::BigOtimes(_)
        | Assertion::StateEq(_, _)
        | Assertion::HasState(_)
        | Assertion::IsState(_, _) => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_assertion, EvalConfig};
    use crate::transform::{assign_transform, assume_transform};
    use hhl_lang::{Expr, ExtState, StateSet, Store, Symbol};

    fn mk(x: i64) -> ExtState {
        ExtState::from_program(Store::from_pairs([("x", Value::Int(x))]))
    }

    #[test]
    fn folds_constants() {
        let e = HExpr::int(2) + HExpr::int(3) * HExpr::int(4);
        assert_eq!(fold_hexpr(&e), HExpr::int(14));
        let b = HExpr::bool(true).and(HExpr::pvar("p", "x").ge(HExpr::int(0)));
        assert_eq!(fold_hexpr(&b), HExpr::pvar("p", "x").ge(HExpr::int(0)));
    }

    #[test]
    fn arithmetic_units() {
        let e = HExpr::pvar("p", "x") + HExpr::int(0);
        assert_eq!(fold_hexpr(&e), HExpr::pvar("p", "x"));
        let m = HExpr::int(1) * HExpr::pvar("p", "x");
        assert_eq!(fold_hexpr(&m), HExpr::pvar("p", "x"));
        let x = HExpr::pvar("p", "x").xor(HExpr::int(0));
        assert_eq!(fold_hexpr(&x), HExpr::pvar("p", "x"));
    }

    #[test]
    fn reflexive_comparisons() {
        let e = HExpr::pvar("p", "x").eq(HExpr::pvar("p", "x"));
        assert_eq!(fold_hexpr(&e), HExpr::bool(true));
        let n = HExpr::pvar("p", "x").lt(HExpr::pvar("p", "x"));
        assert_eq!(fold_hexpr(&n), HExpr::bool(false));
    }

    #[test]
    fn boolean_laws_at_assertion_level() {
        let a = Assertion::tt().and(Assertion::low("x"));
        assert_eq!(simplify(&a), Assertion::low("x"));
        let o = Assertion::ff().or(Assertion::low("x"));
        assert_eq!(simplify(&o), Assertion::low("x"));
        let dead = Assertion::ff().and(Assertion::low("x"));
        assert_eq!(simplify(&dead), Assertion::ff());
    }

    #[test]
    fn quantifier_pruning_respects_emptiness() {
        // ∀⟨φ⟩. ⊤ simplifies to ⊤, but ∀⟨φ⟩. ⊥ must stay (it is emp).
        let trivial = Assertion::forall_state("p", Assertion::tt());
        assert_eq!(simplify(&trivial), Assertion::tt());
        let emp = Assertion::forall_state("p", Assertion::ff());
        assert_eq!(simplify(&emp), emp);
        // Dually for ∃⟨φ⟩.
        let absurd = Assertion::exists_state("p", Assertion::ff());
        assert_eq!(simplify(&absurd), Assertion::ff());
        let nonemp = Assertion::exists_state("p", Assertion::tt());
        assert_eq!(simplify(&nonemp), nonemp);
    }

    #[test]
    fn simplify_preserves_evaluation() {
        // Run 𝒜 and Π over low(x) with constant-heavy inputs and compare
        // eval before and after simplification on several sets.
        let cfg = EvalConfig::int_range(-1, 2);
        let assertions = [
            assign_transform(
                Symbol::new("x"),
                &(Expr::int(2) + Expr::int(3)),
                &Assertion::low("x"),
            )
            .unwrap(),
            assume_transform(&Expr::bool(true), &Assertion::low("x")).unwrap(),
            Assertion::low("x").and(Assertion::tt()).or(Assertion::ff()),
            Assertion::forall_val("v", Assertion::Atom(HExpr::int(1).le(HExpr::int(2)))),
        ];
        let sets: Vec<StateSet> = vec![
            StateSet::new(),
            [mk(0)].into_iter().collect(),
            [mk(0), mk(1)].into_iter().collect(),
        ];
        for a in &assertions {
            let s2 = simplify(a);
            assert!(s2.size() <= a.size(), "simplify must not grow {a}");
            for s in &sets {
                assert_eq!(
                    eval_assertion(a, s, &cfg),
                    eval_assertion(&s2, s, &cfg),
                    "meaning changed for {a} on {s}"
                );
            }
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let a = Assertion::tt()
            .and(Assertion::low("x"))
            .or(Assertion::ff())
            .and(Assertion::Atom(
                HExpr::int(1) + HExpr::int(0) * HExpr::int(5),
            ));
        let once = simplify(&a);
        assert_eq!(simplify(&once), once);
    }

    #[test]
    fn fig4_outline_shrinks() {
        // The Fig. 4 backward chain produces redundant structure; simplify
        // strictly shrinks it without changing its meaning.
        let q = Assertion::gni_violation("h", "l");
        let a = assign_transform(Symbol::new("l"), &(Expr::var("h") + Expr::int(0)), &q).unwrap();
        let s = simplify(&a);
        assert!(s.size() <= a.size());
        let cfg = EvalConfig::int_range(0, 1);
        let set: StateSet = [mk(0), mk(1)].into_iter().collect();
        assert_eq!(
            eval_assertion(&a, &set, &cfg),
            eval_assertion(&s, &set, &cfg)
        );
    }
}
