//! Syntactic hyper-assertions (Definition 9) with the paper's extensions.
//!
//! ```text
//! A ::= b | e ⪰ e | A ∨ A | A ∧ A | ∀y. A | ∃y. A | ∀⟨φ⟩. A | ∃⟨φ⟩. A
//! ```
//!
//! Beyond Def. 9 the AST carries the operators the paper uses semantically:
//!
//! * [`Assertion::Otimes`] — the `⊗` split operator of Def. 6 (rule `Choice`);
//! * [`Assertion::BigOtimes`] — the indexed `⨂ₙ Iₙ` of Def. 7 (rule `Iter`),
//!   carried as an indexed family of assertions;
//! * [`Assertion::Card`] — `|{e(φ) : φ ∈ S}| ⪰ e'` cardinality
//!   comprehensions (the quantitative-information-flow assertions of App. B);
//! * [`Assertion::StateEq`] — full extended-state equality (the
//!   `isSingleton` of App. D.2);
//! * [`Assertion::HasState`] — `⟨φ⟩` membership of a concrete state (used by
//!   the `Linking` rule and the Incorrectness-Logic embedding of App. C.2).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use hhl_lang::{BinOp, ExtState, Symbol};

use crate::hexpr::HExpr;

/// An indexed family of assertions `n ↦ Iₙ`, used by [`Assertion::BigOtimes`]
/// and by the `Iter`/`WhileDesugared` rules.
///
/// Equality is by pointer (families are opaque functions); evaluation bounds
/// the index by the family's `bound`.
///
/// Backed by an `Arc` over a `Send + Sync` closure so assertions (and the
/// proof obligations carrying them) can cross threads — the batch driver
/// fans independently checkable obligations across a worker pool.
#[derive(Clone)]
pub struct Family {
    f: Arc<dyn Fn(u32) -> Assertion + Send + Sync>,
    /// Highest index considered during bounded evaluation of `⨂ₙ Iₙ`.
    pub bound: u32,
}

impl Family {
    /// Creates a family from a closure, evaluated up to `bound` (inclusive).
    pub fn new<F: Fn(u32) -> Assertion + Send + Sync + 'static>(bound: u32, f: F) -> Family {
        Family {
            f: Arc::new(f),
            bound,
        }
    }

    /// The member assertion `Iₙ`.
    pub fn at(&self, n: u32) -> Assertion {
        (self.f)(n)
    }
}

impl fmt::Debug for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Family(bound = {})", self.bound)
    }
}

impl PartialEq for Family {
    fn eq(&self, other: &Family) -> bool {
        Arc::ptr_eq(&self.f, &other.f) && self.bound == other.bound
    }
}

impl Eq for Family {}

/// A syntactic hyper-assertion (Def. 9 + extensions; see module docs).
///
/// # Examples
///
/// ```
/// use hhl_assert::Assertion;
/// // low(l) ≜ ∀⟨φ1⟩,⟨φ2⟩. φ1(l) = φ2(l)
/// let a = Assertion::low("l");
/// assert_eq!(a.to_string(), "∀⟨phi1⟩. ∀⟨phi2⟩. phi1(l) == phi2(l)");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Assertion {
    /// A boolean-valued hyper-expression (`b` and `e ⪰ e` of Def. 9).
    Atom(HExpr),
    /// Negation. `negate()` pushes negations inward for the Def. 9 fragment;
    /// this node remains only around the non-dualizable extensions.
    Not(Box<Assertion>),
    /// Conjunction.
    And(Box<Assertion>, Box<Assertion>),
    /// Disjunction.
    Or(Box<Assertion>, Box<Assertion>),
    /// `∀y. A` — universal quantification over values.
    ForallVal(Symbol, Box<Assertion>),
    /// `∃y. A` — existential quantification over values.
    ExistsVal(Symbol, Box<Assertion>),
    /// `∀⟨φ⟩. A` — universal quantification over the states of the set.
    ForallState(Symbol, Box<Assertion>),
    /// `∃⟨φ⟩. A` — existential quantification over the states of the set.
    ExistsState(Symbol, Box<Assertion>),
    /// `A ⊗ B` (Def. 6): `S` splits as `S1 ∪ S2` with `A(S1)` and `B(S2)`.
    Otimes(Box<Assertion>, Box<Assertion>),
    /// `⨂ₙ Iₙ` (Def. 7): `S = ⋃ₙ f(n)` with `Iₙ(f(n))` for every `n`.
    BigOtimes(Family),
    /// `|{proj(φ) : φ ∈ S}| ⪰ bound` — cardinality comprehension (App. B).
    Card {
        /// The comprehension's bound state variable.
        state: Symbol,
        /// Projection applied to each state.
        proj: HExpr,
        /// Comparison operator relating cardinality and bound.
        op: BinOp,
        /// Bound expression (must not mention `state`).
        bound: HExpr,
    },
    /// `φ1 = φ2` — extended-state equality (logical and program stores).
    StateEq(Symbol, Symbol),
    /// `⟨φ⟩` for a *concrete* state: `φ ∈ S`.
    HasState(ExtState),
    /// A bound state variable equals a *concrete* state (used to express the
    /// exact-set assertions `λS. S = V` of Thm. 2/Thm. 5).
    IsState(Symbol, ExtState),
    /// `⨂P` (App. D, rule `BigUnion`): `S` is a union of subsets each
    /// satisfying `P` — `∃F. S = ⋃_{S'∈F} S' ∧ ∀S'∈F. P(S')`.
    UnionOf(Box<Assertion>),
}

impl Assertion {
    /// The trivially-true assertion `⊤`.
    pub fn tt() -> Assertion {
        Assertion::Atom(HExpr::bool(true))
    }

    /// The trivially-false assertion `⊥`.
    pub fn ff() -> Assertion {
        Assertion::Atom(HExpr::bool(false))
    }

    /// Conjunction helper.
    pub fn and(self, other: Assertion) -> Assertion {
        Assertion::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Assertion) -> Assertion {
        Assertion::Or(Box::new(self), Box::new(other))
    }

    /// `A ⇒ B ≜ ¬A ∨ B` (the paper's definition after Def. 9).
    pub fn implies(self, other: Assertion) -> Assertion {
        self.negate().or(other)
    }

    /// `∀y. A`.
    pub fn forall_val<S: Into<Symbol>>(y: S, body: Assertion) -> Assertion {
        Assertion::ForallVal(y.into(), Box::new(body))
    }

    /// `∃y. A`.
    pub fn exists_val<S: Into<Symbol>>(y: S, body: Assertion) -> Assertion {
        Assertion::ExistsVal(y.into(), Box::new(body))
    }

    /// `∀⟨φ⟩. A`.
    pub fn forall_state<S: Into<Symbol>>(phi: S, body: Assertion) -> Assertion {
        Assertion::ForallState(phi.into(), Box::new(body))
    }

    /// `∃⟨φ⟩. A`.
    pub fn exists_state<S: Into<Symbol>>(phi: S, body: Assertion) -> Assertion {
        Assertion::ExistsState(phi.into(), Box::new(body))
    }

    /// `∀⟨φ1⟩, …, ⟨φn⟩. A`.
    pub fn forall_states<S: Into<Symbol>, I: IntoIterator<Item = S>>(
        phis: I,
        body: Assertion,
    ) -> Assertion {
        let names: Vec<Symbol> = phis.into_iter().map(Into::into).collect();
        names
            .into_iter()
            .rev()
            .fold(body, |acc, phi| Assertion::forall_state(phi, acc))
    }

    /// `∃⟨φ1⟩, …, ⟨φn⟩. A`.
    pub fn exists_states<S: Into<Symbol>, I: IntoIterator<Item = S>>(
        phis: I,
        body: Assertion,
    ) -> Assertion {
        let names: Vec<Symbol> = phis.into_iter().map(Into::into).collect();
        names
            .into_iter()
            .rev()
            .fold(body, |acc, phi| Assertion::exists_state(phi, acc))
    }

    /// `A ⊗ B` (Def. 6).
    pub fn otimes(self, other: Assertion) -> Assertion {
        Assertion::Otimes(Box::new(self), Box::new(other))
    }

    /// `⨂ₙ Iₙ` (Def. 7), evaluated up to the family's bound.
    pub fn big_otimes(family: Family) -> Assertion {
        Assertion::BigOtimes(family)
    }

    /// Standard recursive negation (the `¬A` of §4.1). Dualizes the Def. 9
    /// fragment; wraps [`Assertion::Not`] around extension nodes.
    pub fn negate(&self) -> Assertion {
        match self {
            Assertion::Atom(e) => Assertion::Atom(e.clone().not()),
            Assertion::Not(a) => (**a).clone(),
            Assertion::And(a, b) => a.negate().or(b.negate()),
            Assertion::Or(a, b) => a.negate().and(b.negate()),
            Assertion::ForallVal(y, a) => Assertion::exists_val(*y, a.negate()),
            Assertion::ExistsVal(y, a) => Assertion::forall_val(*y, a.negate()),
            Assertion::ForallState(p, a) => Assertion::exists_state(*p, a.negate()),
            Assertion::ExistsState(p, a) => Assertion::forall_state(*p, a.negate()),
            Assertion::Card {
                state,
                proj,
                op,
                bound,
            } => {
                let dual = match op {
                    BinOp::Eq => BinOp::Ne,
                    BinOp::Ne => BinOp::Eq,
                    BinOp::Lt => BinOp::Ge,
                    BinOp::Le => BinOp::Gt,
                    BinOp::Gt => BinOp::Le,
                    BinOp::Ge => BinOp::Lt,
                    _ => return Assertion::Not(Box::new(self.clone())),
                };
                Assertion::Card {
                    state: *state,
                    proj: proj.clone(),
                    op: dual,
                    bound: bound.clone(),
                }
            }
            Assertion::Otimes(_, _)
            | Assertion::BigOtimes(_)
            | Assertion::StateEq(_, _)
            | Assertion::HasState(_)
            | Assertion::IsState(_, _)
            | Assertion::UnionOf(_) => Assertion::Not(Box::new(self.clone())),
        }
    }

    /// Renames a *free* quantified state variable (capture-naive; callers
    /// rename to fresh targets).
    pub fn rename_state(&self, from: Symbol, to: Symbol) -> Assertion {
        match self {
            Assertion::Atom(e) => Assertion::Atom(e.rename_state(from, to)),
            Assertion::Not(a) => Assertion::Not(Box::new(a.rename_state(from, to))),
            Assertion::And(a, b) => a.rename_state(from, to).and(b.rename_state(from, to)),
            Assertion::Or(a, b) => a.rename_state(from, to).or(b.rename_state(from, to)),
            Assertion::ForallVal(y, a) => Assertion::forall_val(*y, a.rename_state(from, to)),
            Assertion::ExistsVal(y, a) => Assertion::exists_val(*y, a.rename_state(from, to)),
            Assertion::ForallState(p, a) => {
                if *p == from {
                    self.clone() // shadowed
                } else {
                    Assertion::forall_state(*p, a.rename_state(from, to))
                }
            }
            Assertion::ExistsState(p, a) => {
                if *p == from {
                    self.clone()
                } else {
                    Assertion::exists_state(*p, a.rename_state(from, to))
                }
            }
            Assertion::Otimes(a, b) => a.rename_state(from, to).otimes(b.rename_state(from, to)),
            Assertion::BigOtimes(_) => self.clone(),
            Assertion::Card {
                state,
                proj,
                op,
                bound,
            } => {
                if *state == from {
                    self.clone()
                } else {
                    Assertion::Card {
                        state: *state,
                        proj: proj.rename_state(from, to),
                        op: *op,
                        bound: bound.rename_state(from, to),
                    }
                }
            }
            Assertion::StateEq(a, b) => {
                let a2 = if *a == from { to } else { *a };
                let b2 = if *b == from { to } else { *b };
                Assertion::StateEq(a2, b2)
            }
            Assertion::HasState(_) => self.clone(),
            Assertion::IsState(p, st) => {
                let p2 = if *p == from { to } else { *p };
                Assertion::IsState(p2, st.clone())
            }
            Assertion::UnionOf(a) => Assertion::UnionOf(Box::new(a.rename_state(from, to))),
        }
    }

    /// Substitutes a *concrete* state `st` for the free state variable
    /// `phi` (capture-aware: shadowing rebinders stop the substitution).
    /// Used by the `Linking` and `While-∃` rule checkers, which instantiate
    /// meta-quantified states with universe members.
    pub fn instantiate_state(&self, phi: Symbol, st: &ExtState) -> Assertion {
        match self {
            Assertion::Atom(e) => Assertion::Atom(e.instantiate_state(phi, st)),
            Assertion::Not(a) => Assertion::Not(Box::new(a.instantiate_state(phi, st))),
            Assertion::And(a, b) => a
                .instantiate_state(phi, st)
                .and(b.instantiate_state(phi, st)),
            Assertion::Or(a, b) => a
                .instantiate_state(phi, st)
                .or(b.instantiate_state(phi, st)),
            Assertion::ForallVal(y, a) => Assertion::forall_val(*y, a.instantiate_state(phi, st)),
            Assertion::ExistsVal(y, a) => Assertion::exists_val(*y, a.instantiate_state(phi, st)),
            Assertion::ForallState(p, a) if *p != phi => {
                Assertion::forall_state(*p, a.instantiate_state(phi, st))
            }
            Assertion::ExistsState(p, a) if *p != phi => {
                Assertion::exists_state(*p, a.instantiate_state(phi, st))
            }
            Assertion::ForallState(_, _) | Assertion::ExistsState(_, _) => self.clone(),
            Assertion::Otimes(a, b) => a
                .instantiate_state(phi, st)
                .otimes(b.instantiate_state(phi, st)),
            Assertion::BigOtimes(_) => self.clone(),
            Assertion::Card {
                state,
                proj,
                op,
                bound,
            } => {
                if *state == phi {
                    self.clone()
                } else {
                    Assertion::Card {
                        state: *state,
                        proj: proj.instantiate_state(phi, st),
                        op: *op,
                        bound: bound.instantiate_state(phi, st),
                    }
                }
            }
            Assertion::StateEq(a, b) => match (*a == phi, *b == phi) {
                (true, true) => Assertion::tt(),
                (true, false) => Assertion::IsState(*b, st.clone()),
                (false, true) => Assertion::IsState(*a, st.clone()),
                (false, false) => self.clone(),
            },
            Assertion::IsState(p, st2) => {
                if *p == phi {
                    if st == st2 {
                        Assertion::tt()
                    } else {
                        Assertion::ff()
                    }
                } else {
                    self.clone()
                }
            }
            Assertion::HasState(_) => self.clone(),
            Assertion::UnionOf(a) => Assertion::UnionOf(Box::new(a.instantiate_state(phi, st))),
        }
    }

    /// True iff the assertion contains an `∃⟨_⟩` quantifier — the side
    /// condition of `FrameSafe` (Fig. 11).
    pub fn contains_exists_state(&self) -> bool {
        match self {
            Assertion::Atom(_)
            | Assertion::StateEq(_, _)
            | Assertion::IsState(_, _)
            | Assertion::Card { .. } => false,
            Assertion::HasState(_) => true, // ⟨φ⟩ asserts existence of a state
            Assertion::UnionOf(a) => a.contains_exists_state(),
            Assertion::Not(a) => a.contains_forall_state(),
            Assertion::And(a, b) | Assertion::Or(a, b) => {
                a.contains_exists_state() || b.contains_exists_state()
            }
            Assertion::ForallVal(_, a) | Assertion::ExistsVal(_, a) => a.contains_exists_state(),
            Assertion::ForallState(_, a) => a.contains_exists_state(),
            Assertion::ExistsState(_, _) => true,
            Assertion::Otimes(a, b) => a.contains_exists_state() || b.contains_exists_state(),
            Assertion::BigOtimes(f) => (0..=f.bound).any(|n| f.at(n).contains_exists_state()),
        }
    }

    /// True iff the assertion contains a `∀⟨_⟩` quantifier.
    pub fn contains_forall_state(&self) -> bool {
        match self {
            Assertion::Atom(_)
            | Assertion::StateEq(_, _)
            | Assertion::HasState(_)
            | Assertion::IsState(_, _)
            | Assertion::Card { .. } => false,
            Assertion::UnionOf(a) => a.contains_forall_state(),
            Assertion::Not(a) => a.contains_exists_state(),
            Assertion::And(a, b) | Assertion::Or(a, b) => {
                a.contains_forall_state() || b.contains_forall_state()
            }
            Assertion::ForallVal(_, a) | Assertion::ExistsVal(_, a) => a.contains_forall_state(),
            Assertion::ForallState(_, _) => true,
            Assertion::ExistsState(_, a) => a.contains_forall_state(),
            Assertion::Otimes(a, b) => a.contains_forall_state() || b.contains_forall_state(),
            Assertion::BigOtimes(f) => (0..=f.bound).any(|n| f.at(n).contains_forall_state()),
        }
    }

    /// True iff no `∀⟨_⟩` occurs under an `∃⟨_⟩` — the "`no ∀⟨_⟩ after any
    /// ∃`" side condition of the `While-∀*∃*` rule (Fig. 5).
    pub fn no_forall_state_after_exists_state(&self) -> bool {
        fn go(a: &Assertion, under_exists: bool) -> bool {
            match a {
                Assertion::Atom(_)
                | Assertion::StateEq(_, _)
                | Assertion::HasState(_)
                | Assertion::IsState(_, _)
                | Assertion::Card { .. } => true,
                Assertion::UnionOf(x) => go(x, under_exists),
                Assertion::Not(inner) => {
                    // conservatively analyze the negated form
                    go(&inner.negate(), under_exists)
                }
                Assertion::And(x, y) | Assertion::Or(x, y) | Assertion::Otimes(x, y) => {
                    go(x, under_exists) && go(y, under_exists)
                }
                Assertion::ForallVal(_, x) | Assertion::ExistsVal(_, x) => go(x, under_exists),
                Assertion::ForallState(_, x) => !under_exists && go(x, under_exists),
                Assertion::ExistsState(_, x) => go(x, true),
                Assertion::BigOtimes(f) => (0..=f.bound).all(|n| go(&f.at(n), under_exists)),
            }
        }
        go(self, false)
    }

    /// The program variables looked up in quantified states — `fv(F)` of the
    /// frame-rule side conditions (Fig. 11).
    pub fn free_pvars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.visit_hexprs(&mut |e| e.collect_pvars(&mut out));
        if let Some(states) = self.concrete_or_card_pvars() {
            out.extend(states);
        }
        out
    }

    fn concrete_or_card_pvars(&self) -> Option<BTreeSet<Symbol>> {
        // HasState/StateEq constrain entire states: every program variable
        // they store is free. StateEq is conservative: all vars unknown, so
        // callers treat it as potentially free via `mentions_whole_states`.
        let mut out = BTreeSet::new();
        let mut found = false;
        self.visit_nodes(&mut |a| match a {
            Assertion::HasState(st) | Assertion::IsState(_, st) => {
                found = true;
                out.extend(st.program.vars());
            }
            _ => {}
        });
        if found {
            Some(out)
        } else {
            None
        }
    }

    /// True iff the assertion constrains whole states (`StateEq` /
    /// `HasState`), in which case variable-based framing is unsound and the
    /// frame-rule checkers refuse.
    pub fn mentions_whole_states(&self) -> bool {
        let mut found = false;
        self.visit_nodes(&mut |a| {
            if matches!(
                a,
                Assertion::StateEq(_, _) | Assertion::HasState(_) | Assertion::IsState(_, _)
            ) {
                found = true;
            }
        });
        found
    }

    /// The logical variables looked up in quantified states (side condition
    /// of `LUpdateS`).
    pub fn free_lvars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.visit_hexprs(&mut |e| e.collect_lvars(&mut out));
        self.visit_nodes(&mut |a| match a {
            Assertion::HasState(st) | Assertion::IsState(_, st) => {
                out.extend(st.logical.vars());
            }
            _ => {}
        });
        out
    }

    /// Literal values occurring in the assertion (seeds value-quantifier
    /// domains during evaluation).
    pub fn collect_consts(&self, out: &mut BTreeSet<hhl_lang::Value>) {
        self.visit_hexprs(&mut |e| e.collect_consts(out));
    }

    /// Applies `f` to every hyper-expression in the assertion (including
    /// family members up to their bound).
    pub fn visit_hexprs<F: FnMut(&HExpr)>(&self, f: &mut F) {
        match self {
            Assertion::Atom(e) => f(e),
            Assertion::Not(a) => a.visit_hexprs(f),
            Assertion::And(a, b) | Assertion::Or(a, b) | Assertion::Otimes(a, b) => {
                a.visit_hexprs(f);
                b.visit_hexprs(f);
            }
            Assertion::ForallVal(_, a)
            | Assertion::ExistsVal(_, a)
            | Assertion::ForallState(_, a)
            | Assertion::ExistsState(_, a) => a.visit_hexprs(f),
            Assertion::BigOtimes(fam) => {
                for n in 0..=fam.bound {
                    fam.at(n).visit_hexprs(f);
                }
            }
            Assertion::Card { proj, bound, .. } => {
                f(proj);
                f(bound);
            }
            Assertion::StateEq(_, _) | Assertion::HasState(_) | Assertion::IsState(_, _) => {}
            Assertion::UnionOf(a) => a.visit_hexprs(f),
        }
    }

    /// Applies `f` to every assertion node (pre-order), excluding family
    /// members.
    pub fn visit_nodes<F: FnMut(&Assertion)>(&self, f: &mut F) {
        f(self);
        match self {
            Assertion::Atom(_)
            | Assertion::StateEq(_, _)
            | Assertion::HasState(_)
            | Assertion::IsState(_, _)
            | Assertion::Card { .. }
            | Assertion::BigOtimes(_) => {}
            Assertion::UnionOf(a) => a.visit_nodes(f),
            Assertion::Not(a) => a.visit_nodes(f),
            Assertion::And(a, b) | Assertion::Or(a, b) | Assertion::Otimes(a, b) => {
                a.visit_nodes(f);
                b.visit_nodes(f);
            }
            Assertion::ForallVal(_, a)
            | Assertion::ExistsVal(_, a)
            | Assertion::ForallState(_, a)
            | Assertion::ExistsState(_, a) => a.visit_nodes(f),
        }
    }

    /// Number of AST nodes (family members counted once at index 0).
    pub fn size(&self) -> usize {
        match self {
            Assertion::Atom(e) => e.size(),
            Assertion::Not(a) => 1 + a.size(),
            Assertion::And(a, b) | Assertion::Or(a, b) | Assertion::Otimes(a, b) => {
                1 + a.size() + b.size()
            }
            Assertion::ForallVal(_, a)
            | Assertion::ExistsVal(_, a)
            | Assertion::ForallState(_, a)
            | Assertion::ExistsState(_, a) => 1 + a.size(),
            Assertion::BigOtimes(f) => 1 + f.at(0).size(),
            Assertion::Card { proj, bound, .. } => 1 + proj.size() + bound.size(),
            Assertion::StateEq(_, _) | Assertion::HasState(_) | Assertion::IsState(_, _) => 1,
            Assertion::UnionOf(a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assertion::Atom(e) => write!(f, "{e}"),
            Assertion::Not(a) => write!(f, "¬({a})"),
            Assertion::And(a, b) => {
                let wrap = |x: &Assertion| {
                    matches!(x, Assertion::Or(_, _))
                        || matches!(
                            x,
                            Assertion::ForallVal(_, _)
                                | Assertion::ExistsVal(_, _)
                                | Assertion::ForallState(_, _)
                                | Assertion::ExistsState(_, _)
                        )
                };
                if wrap(a) {
                    write!(f, "({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
                write!(f, " ∧ ")?;
                if wrap(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Assertion::Or(a, b) => {
                let wrap = |x: &Assertion| {
                    matches!(
                        x,
                        Assertion::ForallVal(_, _)
                            | Assertion::ExistsVal(_, _)
                            | Assertion::ForallState(_, _)
                            | Assertion::ExistsState(_, _)
                    )
                };
                if wrap(a) {
                    write!(f, "({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
                write!(f, " ∨ ")?;
                if wrap(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Assertion::ForallVal(y, a) => write!(f, "∀{y}. {a}"),
            Assertion::ExistsVal(y, a) => write!(f, "∃{y}. {a}"),
            Assertion::ForallState(p, a) => write!(f, "∀⟨{p}⟩. {a}"),
            Assertion::ExistsState(p, a) => write!(f, "∃⟨{p}⟩. {a}"),
            Assertion::Otimes(a, b) => write!(f, "({a}) ⊗ ({b})"),
            Assertion::BigOtimes(fam) => write!(f, "⨂ₙ≤{} Iₙ", fam.bound),
            Assertion::Card {
                state,
                proj,
                op,
                bound,
            } => write!(f, "|{{{proj} : ⟨{state}⟩}}| {} {bound}", op.token()),
            Assertion::StateEq(a, b) => write!(f, "{a} = {b}"),
            Assertion::HasState(st) => write!(f, "⟨{st}⟩"),
            Assertion::IsState(p, st) => write!(f, "{p} = {st}"),
            Assertion::UnionOf(a) => write!(f, "⨄({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_dualizes_def9_fragment() {
        let a = Assertion::forall_state(
            "phi",
            Assertion::Atom(HExpr::pvar("phi", "x").ge(HExpr::int(5))),
        );
        let n = a.negate();
        match n {
            Assertion::ExistsState(_, body) => match *body {
                Assertion::Atom(e) => assert!(matches!(e, HExpr::Un(hhl_lang::UnOp::Not, _))),
                other => panic!("expected atom, got {other:?}"),
            },
            other => panic!("expected ∃⟨_⟩, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_of_not_node() {
        let s = Assertion::StateEq(Symbol::new("a"), Symbol::new("b"));
        let n = s.negate();
        assert!(matches!(n, Assertion::Not(_)));
        assert_eq!(n.negate(), s);
    }

    #[test]
    fn card_negation_dualizes_op() {
        let c = Assertion::Card {
            state: Symbol::new("phi"),
            proj: HExpr::pvar("phi", "o"),
            op: BinOp::Le,
            bound: HExpr::int(3),
        };
        match c.negate() {
            Assertion::Card { op, .. } => assert_eq!(op, BinOp::Gt),
            other => panic!("expected Card, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_shape_analysis() {
        let fa = Assertion::forall_states(["a", "b"], Assertion::tt());
        assert!(!fa.contains_exists_state());
        assert!(fa.no_forall_state_after_exists_state());

        let forall_exists =
            Assertion::forall_state("a", Assertion::exists_state("b", Assertion::tt()));
        assert!(forall_exists.contains_exists_state());
        assert!(forall_exists.no_forall_state_after_exists_state());

        let exists_forall =
            Assertion::exists_state("a", Assertion::forall_state("b", Assertion::tt()));
        assert!(!exists_forall.no_forall_state_after_exists_state());
    }

    #[test]
    fn rename_respects_shadowing() {
        let a = Assertion::forall_state(
            "p",
            Assertion::Atom(HExpr::pvar("p", "x").eq(HExpr::pvar("q", "x"))),
        );
        let renamed = a.rename_state(Symbol::new("q"), Symbol::new("r"));
        assert_eq!(renamed.to_string(), "∀⟨p⟩. p(x) == r(x)");
        // p is bound: renaming p is a no-op inside
        let noop = a.rename_state(Symbol::new("p"), Symbol::new("z"));
        assert_eq!(noop, a);
    }

    #[test]
    fn free_pvars_and_lvars() {
        let a = Assertion::forall_state(
            "p",
            Assertion::Atom(
                HExpr::pvar("p", "x").eq(HExpr::lvar("p", "t") + HExpr::pvar("p", "y")),
            ),
        );
        let pv = a.free_pvars();
        assert!(pv.contains(&Symbol::new("x")));
        assert!(pv.contains(&Symbol::new("y")));
        assert_eq!(pv.len(), 2);
        assert_eq!(a.free_lvars(), [Symbol::new("t")].into_iter().collect());
    }

    #[test]
    fn implies_is_negation_or() {
        let p = Assertion::Atom(HExpr::val("v").gt(HExpr::int(0)));
        let q = Assertion::tt();
        let imp = p.clone().implies(q.clone());
        assert!(matches!(imp, Assertion::Or(_, _)));
    }

    #[test]
    fn family_equality_by_pointer() {
        let f1 = Family::new(4, |_| Assertion::tt());
        let f2 = f1.clone();
        assert_eq!(f1, f2);
        let f3 = Family::new(4, |_| Assertion::tt());
        assert_ne!(f1, f3);
        assert_eq!(f1.at(2), Assertion::tt());
    }

    #[test]
    fn display_nested_quantifiers() {
        let gni = Assertion::forall_states(
            ["phi1", "phi2"],
            Assertion::exists_state(
                "phi",
                Assertion::Atom(
                    HExpr::pvar("phi", "h")
                        .eq(HExpr::pvar("phi1", "h"))
                        .and(HExpr::pvar("phi", "l").eq(HExpr::pvar("phi2", "l"))),
                ),
            ),
        );
        let s = gni.to_string();
        assert!(s.starts_with("∀⟨phi1⟩. ∀⟨phi2⟩. ∃⟨phi⟩."));
    }

    #[test]
    fn mentions_whole_states_detection() {
        assert!(Assertion::StateEq(Symbol::new("a"), Symbol::new("b")).mentions_whole_states());
        assert!(Assertion::HasState(ExtState::default()).mentions_whole_states());
        assert!(!Assertion::tt().mentions_whole_states());
    }
}
