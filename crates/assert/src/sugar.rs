//! Derived hyper-assertion forms used throughout the paper.
//!
//! * `low(x) ≜ ∀⟨φ1⟩,⟨φ2⟩. φ1(x) = φ2(x)` (§2.2)
//! * `□p ≜ ∀⟨φ⟩. p(φ)` and `emp ≜ ∀⟨φ⟩. ⊥` (§4.1)
//! * `mono_t_x ≜ ∀⟨φ1⟩,⟨φ2⟩. φ1(t)=1 ∧ φ2(t)=2 ⇒ φ1(x) ≥ φ2(x)` (§2.2)
//! * `GNI_h_l ≜ ∀⟨φ1⟩,⟨φ2⟩. ∃⟨φ⟩. φ(h)=φ1(h) ∧ φ(l)=φ2(l)` (§2.3 / §3.6)
//! * `hasMin_x ≜ ∃⟨φ⟩. ∀⟨φ'⟩. φ(x) ≤ φ'(x)` (App. D.2)
//! * `isSingleton ≜ ∃⟨φ⟩. ∀⟨φ'⟩. φ = φ'` (App. D.2)

use hhl_lang::{Expr, Symbol};

use crate::assertion::Assertion;
use crate::hexpr::HExpr;

/// Canonical bound-state names used by the sugar constructors. Distinct from
/// anything the parser produces for user states in practice; proofs relate
/// assertions semantically, so collisions are harmless.
pub const PHI1: &str = "phi1";
/// Second canonical bound-state name.
pub const PHI2: &str = "phi2";
/// Third canonical bound-state name (the witness state of GNI).
pub const PHI: &str = "phi";

impl Assertion {
    /// `low(x)` — all states agree on the program variable `x` (§2.2).
    pub fn low<S: Into<Symbol>>(x: S) -> Assertion {
        let x = x.into();
        Assertion::forall_states(
            [PHI1, PHI2],
            Assertion::Atom(HExpr::pvar(PHI1, x).eq(HExpr::pvar(PHI2, x))),
        )
    }

    /// `low(e)` for a state expression `e` — all states agree on `e`'s value
    /// (the `low(b)` side condition of `WhileSync`, Fig. 5).
    pub fn low_expr(e: &Expr) -> Assertion {
        let p1 = Symbol::new(PHI1);
        let p2 = Symbol::new(PHI2);
        Assertion::forall_states(
            [PHI1, PHI2],
            Assertion::Atom(HExpr::of_expr_at(e, p1).eq(HExpr::of_expr_at(e, p2))),
        )
    }

    /// `□p ≜ ∀⟨φ⟩. p(φ)` — the state expression `p` holds in every state.
    pub fn box_pred(p: &Expr) -> Assertion {
        let phi = Symbol::new(PHI);
        Assertion::forall_state(PHI, Assertion::Atom(HExpr::of_expr_at(p, phi)))
    }

    /// `emp ≜ ∀⟨φ⟩. ⊥` — the set of states is empty.
    pub fn emp() -> Assertion {
        Assertion::forall_state(PHI, Assertion::ff())
    }

    /// `¬emp ≜ ∃⟨φ⟩. ⊤` — at least one state exists.
    pub fn not_emp() -> Assertion {
        Assertion::exists_state(PHI, Assertion::tt())
    }

    /// `mono_t_x` (§2.2): states tagged `t = 1` dominate states tagged
    /// `t = 2` on program variable `x`, with the tag in logical variable `t`.
    pub fn mono<T: Into<Symbol>, X: Into<Symbol>>(t: T, x: X) -> Assertion {
        let (t, x) = (t.into(), x.into());
        Assertion::forall_states(
            [PHI1, PHI2],
            Assertion::Atom(
                HExpr::lvar(PHI1, t)
                    .eq(HExpr::int(1))
                    .and(HExpr::lvar(PHI2, t).eq(HExpr::int(2))),
            )
            .implies(Assertion::Atom(
                HExpr::pvar(PHI1, x).ge(HExpr::pvar(PHI2, x)),
            )),
        )
    }

    /// Generalized non-interference `GNI_h_l` (§2.3): for any two states
    /// there is a witness combining `φ1`'s secret (logical `h`) with `φ2`'s
    /// public output `l`. The secret is compared on the *logical* copy as in
    /// App. D.2 (`φ1_L(h) = φ_L(h) ∧ φ_P(l) = φ2_P(l)`).
    pub fn gni_logical<H: Into<Symbol>, L: Into<Symbol>>(h: H, l: L) -> Assertion {
        let (h, l) = (h.into(), l.into());
        Assertion::forall_states(
            [PHI1, PHI2],
            Assertion::exists_state(
                PHI,
                Assertion::Atom(HExpr::lvar(PHI, h).eq(HExpr::lvar(PHI1, h))).and(Assertion::Atom(
                    HExpr::pvar(PHI, l).eq(HExpr::pvar(PHI2, l)),
                )),
            ),
        )
    }

    /// Generalized non-interference over *program* variables (§2.3, used
    /// when `h` is not modified by the command):
    /// `∀⟨φ1⟩,⟨φ2⟩. ∃⟨φ⟩. φ(h) = φ1(h) ∧ φ(l) = φ2(l)`.
    pub fn gni<H: Into<Symbol>, L: Into<Symbol>>(h: H, l: L) -> Assertion {
        let (h, l) = (h.into(), l.into());
        Assertion::forall_states(
            [PHI1, PHI2],
            Assertion::exists_state(
                PHI,
                Assertion::Atom(HExpr::pvar(PHI, h).eq(HExpr::pvar(PHI1, h))).and(Assertion::Atom(
                    HExpr::pvar(PHI, l).eq(HExpr::pvar(PHI2, l)),
                )),
            ),
        )
    }

    /// The negation-of-GNI postcondition of §2.3 / Fig. 4:
    /// `∃⟨φ1⟩,⟨φ2⟩. ∀⟨φ⟩. φ(h) = φ1(h) ⇒ φ(l) ≠ φ2(l)`.
    pub fn gni_violation<H: Into<Symbol>, L: Into<Symbol>>(h: H, l: L) -> Assertion {
        let (h, l) = (h.into(), l.into());
        Assertion::exists_states(
            [PHI1, PHI2],
            Assertion::forall_state(
                PHI,
                Assertion::Atom(HExpr::pvar(PHI, h).eq(HExpr::pvar(PHI1, h))).implies(
                    Assertion::Atom(HExpr::pvar(PHI, l).ne(HExpr::pvar(PHI2, l))),
                ),
            ),
        )
    }

    /// `hasMin_x ≜ ∃⟨φ⟩. ∀⟨φ'⟩. φ(x) ≤ φ'(x)` (App. D.2).
    pub fn has_min<X: Into<Symbol>>(x: X) -> Assertion {
        let x = x.into();
        Assertion::exists_state(
            PHI1,
            Assertion::forall_state(
                PHI2,
                Assertion::Atom(HExpr::pvar(PHI1, x).le(HExpr::pvar(PHI2, x))),
            ),
        )
    }

    /// `isSingleton ≜ ∃⟨φ⟩. ∀⟨φ'⟩. φ = φ'` (App. D.2) — exactly one state.
    pub fn is_singleton() -> Assertion {
        Assertion::exists_state(
            PHI1,
            Assertion::forall_state(
                PHI2,
                Assertion::StateEq(Symbol::new(PHI1), Symbol::new(PHI2)),
            ),
        )
    }

    /// `∀⟨φ1⟩,⟨φ2⟩. body(φ1, φ2)` with the body built from the two state
    /// symbols — convenience for 2-state relational assertions.
    pub fn forall2<F: FnOnce(Symbol, Symbol) -> Assertion>(f: F) -> Assertion {
        Assertion::forall_states([PHI1, PHI2], f(Symbol::new(PHI1), Symbol::new(PHI2)))
    }

    /// `∃⟨φ1⟩,⟨φ2⟩. body(φ1, φ2)`.
    pub fn exists2<F: FnOnce(Symbol, Symbol) -> Assertion>(f: F) -> Assertion {
        Assertion::exists_states([PHI1, PHI2], f(Symbol::new(PHI1), Symbol::new(PHI2)))
    }

    /// The exact-set assertion `λS. S = V`:
    /// `(∀⟨φ⟩. ⋁_{σ∈V} φ = σ) ∧ ⋀_{σ∈V} ⟨σ⟩`.
    ///
    /// Used by the Thm. 5 disproving construction and by the Thm. 2
    /// completeness construction (`P_V ≜ λS. P(S) ∧ S = V`).
    pub fn exact_set(set: &hhl_lang::StateSet) -> Assertion {
        let phi = Symbol::new(PHI);
        let upper_body = set
            .iter()
            .map(|st| Assertion::IsState(phi, st.clone()))
            .reduce(Assertion::or)
            .unwrap_or_else(Assertion::ff);
        let upper = Assertion::forall_state(PHI, upper_body);
        let lower = set
            .iter()
            .map(|st| Assertion::HasState(st.clone()))
            .reduce(Assertion::and)
            .unwrap_or_else(Assertion::tt);
        upper.and(lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_assertion, EvalConfig};
    use hhl_lang::{ExtState, StateSet, Store, Value};

    fn mk(pairs: &[(&str, i64)]) -> ExtState {
        ExtState::from_program(Store::from_pairs(
            pairs.iter().map(|(k, v)| (*k, Value::Int(*v))),
        ))
    }

    fn set(v: Vec<ExtState>) -> StateSet {
        v.into_iter().collect()
    }

    #[test]
    fn emp_and_not_emp() {
        let cfg = EvalConfig::default();
        assert!(eval_assertion(&Assertion::emp(), &StateSet::new(), &cfg));
        assert!(!eval_assertion(
            &Assertion::emp(),
            &set(vec![mk(&[])]),
            &cfg
        ));
        assert!(eval_assertion(
            &Assertion::not_emp(),
            &set(vec![mk(&[])]),
            &cfg
        ));
        assert!(!eval_assertion(
            &Assertion::not_emp(),
            &StateSet::new(),
            &cfg
        ));
    }

    #[test]
    fn box_pred_universal() {
        let p = Expr::var("h").ge(Expr::int(0));
        let a = Assertion::box_pred(&p);
        let cfg = EvalConfig::default();
        assert!(eval_assertion(
            &a,
            &set(vec![mk(&[("h", 0)]), mk(&[("h", 3)])]),
            &cfg
        ));
        assert!(!eval_assertion(&a, &set(vec![mk(&[("h", -1)])]), &cfg));
    }

    #[test]
    fn low_expr_on_guard() {
        // low(i < n): all states agree on the guard's value.
        let g = Expr::var("i").lt(Expr::var("n"));
        let a = Assertion::low_expr(&g);
        let cfg = EvalConfig::default();
        let agree = set(vec![mk(&[("i", 0), ("n", 3)]), mk(&[("i", 1), ("n", 2)])]);
        assert!(eval_assertion(&a, &agree, &cfg));
        let disagree = set(vec![mk(&[("i", 0), ("n", 3)]), mk(&[("i", 5), ("n", 2)])]);
        assert!(!eval_assertion(&a, &disagree, &cfg));
    }

    #[test]
    fn gni_satisfied_by_c3_style_set() {
        // C3 = y := nonDet(); l := h + y with unbounded pad: for the finite
        // demo, every (h, l) combination is reachable.
        let mut states = Vec::new();
        for h in 0..=1 {
            for l in 0..=2 {
                states.push(mk(&[("h", h), ("l", l)]));
            }
        }
        let cfg = EvalConfig::default();
        assert!(eval_assertion(
            &Assertion::gni("h", "l"),
            &set(states),
            &cfg
        ));
    }

    #[test]
    fn gni_violation_on_leaky_set() {
        // l = h: knowing l pins h down, so GNI fails and its violation holds.
        let s = set(vec![mk(&[("h", 0), ("l", 0)]), mk(&[("h", 1), ("l", 1)])]);
        let cfg = EvalConfig::default();
        assert!(!eval_assertion(&Assertion::gni("h", "l"), &s, &cfg));
        assert!(eval_assertion(
            &Assertion::gni_violation("h", "l"),
            &s,
            &cfg
        ));
    }

    #[test]
    fn has_min_and_singleton() {
        let cfg = EvalConfig::default();
        let s = set(vec![mk(&[("x", 3)]), mk(&[("x", 1)]), mk(&[("x", 2)])]);
        assert!(eval_assertion(&Assertion::has_min("x"), &s, &cfg));
        assert!(!eval_assertion(
            &Assertion::has_min("x"),
            &StateSet::new(),
            &cfg
        ));
        assert!(eval_assertion(
            &Assertion::is_singleton(),
            &set(vec![mk(&[("x", 1)])]),
            &cfg
        ));
        assert!(!eval_assertion(&Assertion::is_singleton(), &s, &cfg));
    }

    #[test]
    fn mono_uses_logical_tags() {
        let cfg = EvalConfig::default();
        let mut a = mk(&[("x", 5)]);
        a.logical.set("t", Value::Int(1));
        let mut b = mk(&[("x", 3)]);
        b.logical.set("t", Value::Int(2));
        assert!(eval_assertion(
            &Assertion::mono("t", "x"),
            &set(vec![a.clone(), b.clone()]),
            &cfg
        ));
        // Swap the tags: now the t=1 state has the smaller x.
        let mut a2 = a.clone();
        a2.logical.set("t", Value::Int(2));
        let mut b2 = b.clone();
        b2.logical.set("t", Value::Int(1));
        assert!(!eval_assertion(
            &Assertion::mono("t", "x"),
            &set(vec![a2, b2]),
            &cfg
        ));
    }
}
