//! Evaluation of hyper-assertions over state sets (Definition 12).
//!
//! Two of Def. 12's clauses are infinitary and are finitized here (see the
//! substitution table in `DESIGN.md`):
//!
//! * **Value quantifiers** `∀y. A` / `∃y. A` range over all of `LVals`. We
//!   evaluate them over a *finite candidate domain*: the configured base
//!   values ([`EvalConfig::values`]), every value stored anywhere in the
//!   evaluated state set (including list elements), every literal in the
//!   assertion, and optionally a one-level closure of that set under the
//!   arithmetic operators appearing in the assertion
//!   ([`EvalConfig::closure_depth`]) — so existential witnesses built by
//!   expressions like `(φ2(s) + φ2(h)[φ2(i)]) ⊕ v2 ⊕ (φ(s) + φ(h)[φ(i)])`
//!   (Fig. 6) are found.
//! * **`⨂ₙ Iₙ`** (Def. 7) requires a decomposition indexed by all of `ℕ`;
//!   we enumerate decompositions up to the family's `bound` and additionally
//!   require `Iₙ(∅)` for [`EvalConfig::family_slack`] indices past the bound.
//!
//! State quantifiers `∀⟨φ⟩` / `∃⟨φ⟩` range over the members of the evaluated
//! set exactly as in the paper (§2.1: `∀⟨φ'⟩. A ≡ λS. ∀φ' ∈ S. A`).

use std::collections::{BTreeMap, BTreeSet};

use hhl_lang::{BinOp, ExtState, StateSet, Symbol, Value};

use crate::assertion::Assertion;
use crate::hexpr::HExpr;

/// Configuration of the finitized evaluator.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Base candidate values for value quantifiers.
    pub values: Vec<Value>,
    /// `> 0` closes the candidate set once under the assertion's arithmetic
    /// operators (capped to keep evaluation tractable).
    pub closure_depth: u8,
    /// Number of indices past a family's bound on which `Iₙ(∅)` is checked.
    pub family_slack: u32,
}

impl Default for EvalConfig {
    /// Values `-3..=3`, no closure, slack 2.
    fn default() -> EvalConfig {
        EvalConfig {
            values: (-3..=3).map(Value::Int).collect(),
            closure_depth: 0,
            family_slack: 2,
        }
    }
}

impl EvalConfig {
    /// Base values `lo..=hi`.
    pub fn int_range(lo: i64, hi: i64) -> EvalConfig {
        EvalConfig {
            values: (lo..=hi).map(Value::Int).collect(),
            ..EvalConfig::default()
        }
    }

    /// Enables one-level operator closure of the candidate domain.
    pub fn with_closure(mut self) -> EvalConfig {
        self.closure_depth = 1;
        self
    }

    /// Replaces the base candidate values.
    pub fn with_values<I: IntoIterator<Item = Value>>(mut self, vals: I) -> EvalConfig {
        self.values = vals.into_iter().collect();
        self
    }
}

fn collect_store_values(s: &StateSet, out: &mut BTreeSet<Value>) {
    fn add(v: &Value, out: &mut BTreeSet<Value>) {
        out.insert(v.clone());
        if let Value::List(items) = v {
            for item in items {
                add(item, out);
            }
        }
    }
    for phi in s {
        for (_, v) in phi.program.iter() {
            add(v, out);
        }
        for (_, v) in phi.logical.iter() {
            add(v, out);
        }
    }
}

fn assertion_ops(a: &Assertion) -> Vec<BinOp> {
    let mut ops = BTreeSet::new();
    a.visit_hexprs(&mut |e| {
        fn go(e: &HExpr, ops: &mut BTreeSet<BinOp>) {
            match e {
                HExpr::Bin(op, x, y) => {
                    if matches!(
                        op,
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Xor | BinOp::Concat
                    ) {
                        ops.insert(*op);
                    }
                    go(x, ops);
                    go(y, ops);
                }
                HExpr::Un(_, x) => go(x, ops),
                _ => {}
            }
        }
        go(e, &mut ops);
    });
    ops.into_iter().collect()
}

/// Builds the candidate value domain for value quantifiers over `s`.
pub fn value_domain(a: &Assertion, s: &StateSet, cfg: &EvalConfig) -> Vec<Value> {
    const CLOSURE_BASE_CAP: usize = 48;
    const DOMAIN_CAP: usize = 4096;

    let mut base: BTreeSet<Value> = cfg.values.iter().cloned().collect();
    collect_store_values(s, &mut base);
    a.collect_consts(&mut base);

    if cfg.closure_depth > 0 && base.len() <= CLOSURE_BASE_CAP {
        let ops = assertion_ops(a);
        let snapshot: Vec<Value> = base.iter().cloned().collect();
        'outer: for op in ops {
            for x in &snapshot {
                for y in &snapshot {
                    base.insert(op.apply(x, y));
                    if base.len() >= DOMAIN_CAP {
                        break 'outer;
                    }
                }
            }
        }
    }
    base.into_iter().collect()
}

/// Mutable binding environments for quantified state and value variables
/// (the `Σ` and `Δ` of Def. 12).
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// State-variable bindings `Σ`.
    pub states: BTreeMap<Symbol, ExtState>,
    /// Value-variable bindings `Δ`.
    pub vals: BTreeMap<Symbol, Value>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// An environment with a single state binding.
    pub fn with_state<S: Into<Symbol>>(phi: S, st: ExtState) -> Env {
        let mut e = Env::new();
        e.states.insert(phi.into(), st);
        e
    }
}

/// Evaluates `a` on the state set `s` with empty environments.
///
/// # Examples
///
/// ```
/// use hhl_assert::{eval_assertion, Assertion, EvalConfig};
/// use hhl_lang::{ExtState, StateSet, Store, Value};
///
/// let low_l = Assertion::low("l");
/// let mk = |l: i64, h: i64| {
///     ExtState::from_program(Store::from_pairs([
///         ("l", Value::Int(l)),
///         ("h", Value::Int(h)),
///     ]))
/// };
/// let same: StateSet = [mk(0, 1), mk(0, 2)].into_iter().collect();
/// let diff: StateSet = [mk(0, 1), mk(1, 2)].into_iter().collect();
/// let cfg = EvalConfig::default();
/// assert!(eval_assertion(&low_l, &same, &cfg));
/// assert!(!eval_assertion(&low_l, &diff, &cfg));
/// ```
pub fn eval_assertion(a: &Assertion, s: &StateSet, cfg: &EvalConfig) -> bool {
    eval_in_env(a, s, &mut Env::new(), cfg)
}

/// Evaluates `a` on `s` under pre-existing bindings (used by rules such as
/// `While-∃` whose premises quantify outside the triple).
pub fn eval_in_env(a: &Assertion, s: &StateSet, env: &mut Env, cfg: &EvalConfig) -> bool {
    let domain = value_domain(a, s, cfg);
    eval_rec(a, s, env, &domain, cfg)
}

fn eval_rec(
    a: &Assertion,
    s: &StateSet,
    env: &mut Env,
    domain: &[Value],
    cfg: &EvalConfig,
) -> bool {
    match a {
        Assertion::Atom(e) => e.eval(&env.states, &env.vals).truthy(),
        Assertion::Not(inner) => !eval_rec(inner, s, env, domain, cfg),
        Assertion::And(x, y) => {
            eval_rec(x, s, env, domain, cfg) && eval_rec(y, s, env, domain, cfg)
        }
        Assertion::Or(x, y) => eval_rec(x, s, env, domain, cfg) || eval_rec(y, s, env, domain, cfg),
        Assertion::ForallVal(y, body) => {
            let saved = env.vals.get(y).cloned();
            let ok = domain.iter().all(|v| {
                env.vals.insert(*y, v.clone());
                eval_rec(body, s, env, domain, cfg)
            });
            restore_val(env, *y, saved);
            ok
        }
        Assertion::ExistsVal(y, body) => {
            let saved = env.vals.get(y).cloned();
            let ok = domain.iter().any(|v| {
                env.vals.insert(*y, v.clone());
                eval_rec(body, s, env, domain, cfg)
            });
            restore_val(env, *y, saved);
            ok
        }
        Assertion::ForallState(p, body) => {
            let saved = env.states.get(p).cloned();
            let states: Vec<ExtState> = s.iter().cloned().collect();
            let ok = states.into_iter().all(|st| {
                env.states.insert(*p, st);
                eval_rec(body, s, env, domain, cfg)
            });
            restore_state(env, *p, saved);
            ok
        }
        Assertion::ExistsState(p, body) => {
            let saved = env.states.get(p).cloned();
            let states: Vec<ExtState> = s.iter().cloned().collect();
            let ok = states.into_iter().any(|st| {
                env.states.insert(*p, st);
                eval_rec(body, s, env, domain, cfg)
            });
            restore_state(env, *p, saved);
            ok
        }
        Assertion::Otimes(x, y) => s
            .splittings()
            .into_iter()
            .any(|(s1, s2)| eval_in_subset(x, &s1, env, cfg) && eval_in_subset(y, &s2, env, cfg)),
        Assertion::BigOtimes(fam) => {
            let blocks = fam.bound as usize + 1;
            // Every block beyond the bound must be empty and satisfy Iₙ(∅).
            for n in (fam.bound + 1)..=(fam.bound + cfg.family_slack) {
                if !eval_in_subset(&fam.at(n), &StateSet::new(), env, cfg) {
                    return false;
                }
            }
            s.partitions_into(blocks).into_iter().any(|parts| {
                parts
                    .iter()
                    .enumerate()
                    .all(|(n, block)| eval_in_subset(&fam.at(n as u32), block, env, cfg))
            })
        }
        Assertion::Card {
            state,
            proj,
            op,
            bound,
        } => {
            let saved = env.states.get(state).cloned();
            let mut image = BTreeSet::new();
            for st in s.iter() {
                env.states.insert(*state, st.clone());
                image.insert(proj.eval(&env.states, &env.vals));
            }
            restore_state(env, *state, saved);
            let card = Value::Int(image.len() as i64);
            let b = bound.eval(&env.states, &env.vals);
            op.apply(&card, &b).truthy()
        }
        Assertion::StateEq(a1, a2) => {
            let s1 = env.states.get(a1);
            let s2 = env.states.get(a2);
            match (s1, s2) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            }
        }
        Assertion::HasState(st) => s.contains(st),
        Assertion::IsState(p, st) => env.states.get(p) == Some(st),
        Assertion::UnionOf(inner) => {
            // ⨂P(S) ⟺ ∀φ∈S. ∃S'⊆S. φ ∈ S' ∧ P(S') (take F to be those S').
            let subsets = s.subsets_up_to(s.len());
            s.iter().all(|phi| {
                subsets
                    .iter()
                    .any(|sub| sub.contains(phi) && eval_in_subset(inner, sub, env, cfg))
            })
        }
    }
}

fn eval_in_subset(a: &Assertion, subset: &StateSet, env: &mut Env, cfg: &EvalConfig) -> bool {
    // Sub-evaluations (⊗ splits) recompute their own domains: the subset's
    // store values may differ from the parent's.
    let domain = value_domain(a, subset, cfg);
    eval_rec(a, subset, env, &domain, cfg)
}

fn restore_val(env: &mut Env, key: Symbol, saved: Option<Value>) {
    match saved {
        Some(v) => {
            env.vals.insert(key, v);
        }
        None => {
            env.vals.remove(&key);
        }
    }
}

fn restore_state(env: &mut Env, key: Symbol, saved: Option<ExtState>) {
    match saved {
        Some(v) => {
            env.states.insert(key, v);
        }
        None => {
            env.states.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Family;
    use hhl_lang::Store;

    fn mk(pairs: &[(&str, i64)]) -> ExtState {
        ExtState::from_program(Store::from_pairs(
            pairs.iter().map(|(k, v)| (*k, Value::Int(*v))),
        ))
    }

    fn set(v: Vec<ExtState>) -> StateSet {
        v.into_iter().collect()
    }

    #[test]
    fn forall_state_on_empty_set_is_true() {
        let a = Assertion::forall_state("p", Assertion::ff());
        assert!(eval_assertion(&a, &StateSet::new(), &EvalConfig::default()));
    }

    #[test]
    fn exists_state_requires_member() {
        let a = Assertion::exists_state("p", Assertion::tt());
        let cfg = EvalConfig::default();
        assert!(!eval_assertion(&a, &StateSet::new(), &cfg));
        assert!(eval_assertion(&a, &set(vec![mk(&[])]), &cfg));
    }

    #[test]
    fn p2_existential_over_values() {
        // ∀n. 0 ≤ n ≤ 9 ⇒ ∃⟨φ⟩. φ(x) = n  — the P2 postcondition of §2.1.
        let body = Assertion::Atom(
            HExpr::int(0)
                .le(HExpr::val("n"))
                .and(HExpr::val("n").le(HExpr::int(9)))
                .not()
                .or(HExpr::bool(false)),
        ); // placeholder, build properly below
        let _ = body;
        let p2 = Assertion::forall_val(
            "n",
            Assertion::Atom(
                HExpr::int(0)
                    .le(HExpr::val("n"))
                    .and(HExpr::val("n").le(HExpr::int(9))),
            )
            .implies(Assertion::exists_state(
                "phi",
                Assertion::Atom(HExpr::pvar("phi", "x").eq(HExpr::val("n"))),
            )),
        );
        let all: StateSet = (0..=9).map(|i| mk(&[("x", i)])).collect();
        let cfg = EvalConfig::int_range(-2, 11);
        assert!(eval_assertion(&p2, &all, &cfg));
        let missing: StateSet = (0..=8).map(|i| mk(&[("x", i)])).collect();
        assert!(!eval_assertion(&p2, &missing, &cfg));
    }

    #[test]
    fn otimes_splits() {
        // (all x=1) ⊗ (all x=2) holds of {x=1, x=2}
        let all_eq = |n: i64| {
            Assertion::forall_state(
                "p",
                Assertion::Atom(HExpr::pvar("p", "x").eq(HExpr::int(n))),
            )
        };
        let a = all_eq(1).otimes(all_eq(2));
        let cfg = EvalConfig::default();
        assert!(eval_assertion(
            &a,
            &set(vec![mk(&[("x", 1)]), mk(&[("x", 2)])]),
            &cfg
        ));
        assert!(!eval_assertion(
            &a,
            &set(vec![mk(&[("x", 1)]), mk(&[("x", 3)])]),
            &cfg
        ));
        // Splits may be empty: (all x=1) ⊗ (all x=1) holds of {x=1}.
        let b = all_eq(1).otimes(all_eq(1));
        assert!(eval_assertion(&b, &set(vec![mk(&[("x", 1)])]), &cfg));
    }

    #[test]
    fn big_otimes_partitions() {
        // Iₙ ≜ ∀⟨p⟩. p(x) = n, bound 3: holds of {x=0, x=2} (blocks 0 and 2).
        let fam = Family::new(3, |n| {
            Assertion::forall_state(
                "p",
                Assertion::Atom(HExpr::pvar("p", "x").eq(HExpr::int(n as i64))),
            )
        });
        let a = Assertion::big_otimes(fam);
        let cfg = EvalConfig::default();
        assert!(eval_assertion(
            &a,
            &set(vec![mk(&[("x", 0)]), mk(&[("x", 2)])]),
            &cfg
        ));
        assert!(!eval_assertion(&a, &set(vec![mk(&[("x", 5)])]), &cfg));
    }

    #[test]
    fn big_otimes_respects_beyond_bound_emptiness() {
        // Iₙ ≜ ∃⟨p⟩. ⊤ (non-empty) fails beyond the bound on ∅.
        let fam = Family::new(1, |_| Assertion::exists_state("p", Assertion::tt()));
        let a = Assertion::big_otimes(fam);
        let cfg = EvalConfig::default();
        assert!(!eval_assertion(
            &a,
            &set(vec![mk(&[("x", 0)]), mk(&[("x", 1)])]),
            &cfg
        ));
    }

    #[test]
    fn card_comprehension() {
        // |{φ(o) : φ ∈ S}| <= 2
        let a = Assertion::Card {
            state: Symbol::new("p"),
            proj: HExpr::pvar("p", "o"),
            op: BinOp::Le,
            bound: HExpr::int(2),
        };
        let cfg = EvalConfig::default();
        let two: StateSet = set(vec![
            mk(&[("o", 1)]),
            mk(&[("o", 2)]),
            mk(&[("o", 1), ("z", 9)]),
        ]);
        assert!(eval_assertion(&a, &two, &cfg));
        let three: StateSet = set(vec![mk(&[("o", 1)]), mk(&[("o", 2)]), mk(&[("o", 3)])]);
        assert!(!eval_assertion(&a, &three, &cfg));
    }

    #[test]
    fn state_eq_and_has_state() {
        let phi = mk(&[("x", 1)]);
        let single = Assertion::exists_state(
            "a",
            Assertion::forall_state("b", Assertion::StateEq(Symbol::new("a"), Symbol::new("b"))),
        );
        let cfg = EvalConfig::default();
        assert!(eval_assertion(&single, &set(vec![phi.clone()]), &cfg));
        assert!(!eval_assertion(
            &single,
            &set(vec![phi.clone(), mk(&[("x", 2)])]),
            &cfg
        ));
        let member = Assertion::HasState(phi.clone());
        assert!(eval_assertion(&member, &set(vec![phi]), &cfg));
        assert!(!eval_assertion(&member, &StateSet::new(), &cfg));
    }

    #[test]
    fn negation_complements_eval() {
        let a = Assertion::low("l");
        let s = set(vec![mk(&[("l", 1)]), mk(&[("l", 2)])]);
        let cfg = EvalConfig::default();
        assert!(!eval_assertion(&a, &s, &cfg));
        assert!(eval_assertion(&a.negate(), &s, &cfg));
    }

    #[test]
    fn closure_finds_derived_witnesses() {
        // ∃v. v = φ1(a) ⊕ φ2(b): the witness 6 ⊕ 5 = 3 is not stored anywhere
        // (and appears as no literal), so the plain domain misses it.
        let a = Assertion::exists_states(
            ["p1", "p2"],
            Assertion::exists_val(
                "v",
                Assertion::Atom(HExpr::pvar("p1", "a").ne(HExpr::int(0)))
                    .and(Assertion::Atom(HExpr::pvar("p2", "b").ne(HExpr::int(0))))
                    .and(Assertion::Atom(
                        HExpr::val("v").eq(HExpr::pvar("p1", "a").xor(HExpr::pvar("p2", "b"))),
                    )),
            ),
        );
        let s = set(vec![mk(&[("a", 6)]), mk(&[("b", 5)])]);
        let plain = EvalConfig::default().with_values([]);
        assert!(!eval_assertion(&a, &s, &plain));
        let closed = EvalConfig::default().with_values([]).with_closure();
        assert!(eval_assertion(&a, &s, &closed));
    }

    #[test]
    fn env_bindings_shadow_and_restore() {
        // ∃v. (v = 1 ∧ ∃v. v = 2) ∧ v = 1 — inner binding must not leak.
        let inner = Assertion::exists_val("v", Assertion::Atom(HExpr::val("v").eq(HExpr::int(2))));
        let a = Assertion::exists_val(
            "v",
            Assertion::Atom(HExpr::val("v").eq(HExpr::int(1)))
                .and(inner)
                .and(Assertion::Atom(HExpr::val("v").eq(HExpr::int(1)))),
        );
        let s = set(vec![mk(&[])]);
        assert!(eval_assertion(&a, &s, &EvalConfig::default()));
    }
}
