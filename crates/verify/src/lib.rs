//! # hhl-verify — a Hypra-style verifier for Hyper Hoare Logic
//!
//! The paper's conclusion announces SMT-backed automation (realized later as
//! the Hypra verifier). This crate implements the same pipeline shape over
//! this workspace's finite-model infrastructure:
//!
//! 1. programs are annotated with loop invariants and a Fig. 5 proof rule
//!    per loop ([`AProgram`], [`LoopRule`]);
//! 2. a backward pass computes *exact* weakest preconditions for
//!    straight-line code via the Fig. 3 syntactic transformations and emits
//!    the loop rules' premises as verification conditions ([`vcgen`]);
//! 3. entailment VCs are discharged by the finite-model entailment checker,
//!    semantic VCs by the triple-validity checker ([`verify`]).
//!
//! # Example
//!
//! ```
//! use hhl_assert::{Assertion, Universe};
//! use hhl_core::ValidityConfig;
//! use hhl_lang::{Cmd, Expr};
//! use hhl_verify::{verify, AProgram, AStmt, LoopRule};
//!
//! // Prove low(i) after `while (i < n) { i := i + 1 }` with WhileSync.
//! let inv = Assertion::low("i").and(Assertion::low("n"));
//! let prog = AProgram::new(
//!     inv.clone(),
//!     vec![AStmt::While {
//!         guard: Expr::var("i").lt(Expr::var("n")),
//!         rule: LoopRule::Sync { inv },
//!         body: vec![AStmt::Basic(Cmd::assign("i", Expr::var("i") + Expr::int(1)))],
//!     }],
//!     Assertion::low("i"),
//! );
//! let cfg = ValidityConfig::new(Universe::int_cube(&["i", "n"], 0, 2));
//! assert!(verify(&prog, &cfg).unwrap().verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod report;
mod vcgen;

pub use ast::{command_of, AProgram, AStmt, LoopRule, StructureError};
pub use report::{verify, ObligationResult, Report};
pub use vcgen::{vcgen, Obligation, VerifyError};
