//! Annotated programs: structured commands with loop-rule annotations.
//!
//! The verifier works on a structured view of programs where loops carry the
//! invariants and the Fig. 5 proof rule chosen for them — the same
//! information Hypra (the paper's follow-on verifier) takes as annotations.

use hhl_assert::Assertion;
use hhl_lang::{Cmd, Expr, Symbol};

/// The Fig. 5 rule used to verify a `while` loop.
#[derive(Clone, Debug)]
pub enum LoopRule {
    /// `WhileSync`: synchronized control flow; requires `I |= low(b)`.
    Sync {
        /// The loop invariant `I`.
        inv: Assertion,
    },
    /// `While-∀*∃*`: invariant over all loop unrollings; the
    /// `{I} if (b) {C} {I}` premise is discharged semantically.
    ForallExists {
        /// The loop invariant `I`.
        inv: Assertion,
    },
    /// `While-∃`: top-level existential postconditions. All premises are
    /// discharged semantically against the model.
    Exists {
        /// The tracked-state variable `φ`.
        phi: Symbol,
        /// `P_φ` (with `φ` free).
        p_body: Assertion,
        /// `Q_φ` (with `φ` free).
        q_body: Assertion,
        /// The decreasing variant expression.
        variant: Expr,
    },
}

/// A statement of an annotated program.
#[derive(Clone, Debug)]
pub enum AStmt {
    /// A loop-free, choice-free atomic command sequence — verified by exact
    /// weakest preconditions (Fig. 3).
    Basic(Cmd),
    /// A two-armed conditional, verified with the `IfSync`-derived weakest
    /// precondition `low(b) ∧ wp(then, Q) ∧ wp(else, Q)`.
    If {
        /// Branch condition.
        guard: Expr,
        /// Then-branch.
        then_b: Vec<AStmt>,
        /// Else-branch.
        else_b: Vec<AStmt>,
    },
    /// An annotated `while` loop.
    While {
        /// Loop guard.
        guard: Expr,
        /// The chosen proof rule and its annotations.
        rule: LoopRule,
        /// Loop body.
        body: Vec<AStmt>,
    },
}

impl AStmt {
    /// Erases annotations, recovering the underlying command.
    pub fn command(&self) -> Cmd {
        match self {
            AStmt::Basic(c) => c.clone(),
            AStmt::If {
                guard,
                then_b,
                else_b,
            } => Cmd::if_else(guard.clone(), command_of(then_b), command_of(else_b)),
            AStmt::While { guard, body, .. } => Cmd::while_loop(guard.clone(), command_of(body)),
        }
    }
}

/// Erases a statement sequence to a command.
pub fn command_of(stmts: &[AStmt]) -> Cmd {
    Cmd::seq_all(stmts.iter().map(AStmt::command))
}

/// An annotated program with its specification.
#[derive(Clone, Debug)]
pub struct AProgram {
    /// The statements.
    pub stmts: Vec<AStmt>,
    /// The required precondition.
    pub pre: Assertion,
    /// The required postcondition.
    pub post: Assertion,
}

impl AProgram {
    /// Creates an annotated program.
    pub fn new(pre: Assertion, stmts: Vec<AStmt>, post: Assertion) -> AProgram {
        AProgram { stmts, pre, post }
    }

    /// The underlying (annotation-erased) command.
    pub fn command(&self) -> Cmd {
        command_of(&self.stmts)
    }

    /// Structures a parsed command, recognizing the paper's `if`/`while`
    /// desugarings, and attaches loop rules *in source order* from `rules`.
    ///
    /// # Errors
    ///
    /// [`StructureError::MissingAnnotation`] if the command contains more
    /// loops than rules supplied; [`StructureError::UnstructuredChoice`] if
    /// a `+` does not match an `if` desugaring; leftover rules are reported
    /// as [`StructureError::ExtraAnnotations`].
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_assert::Assertion;
    /// use hhl_lang::parse_cmd;
    /// use hhl_verify::{AProgram, LoopRule};
    ///
    /// let cmd = parse_cmd("i := 0; while (i < n) { i := i + 1 }").unwrap();
    /// let inv = Assertion::low("i").and(Assertion::low("n"));
    /// let prog = AProgram::from_cmd(
    ///     Assertion::low("n"),
    ///     &cmd,
    ///     Assertion::low("i"),
    ///     vec![LoopRule::Sync { inv }],
    /// ).unwrap();
    /// assert_eq!(prog.command(), cmd);
    /// ```
    pub fn from_cmd(
        pre: Assertion,
        cmd: &Cmd,
        post: Assertion,
        rules: Vec<LoopRule>,
    ) -> Result<AProgram, StructureError> {
        let mut queue: std::collections::VecDeque<LoopRule> = rules.into();
        let stmts = structure_cmd(cmd, &mut queue)?;
        if !queue.is_empty() {
            return Err(StructureError::ExtraAnnotations(queue.len()));
        }
        Ok(AProgram { stmts, pre, post })
    }
}

/// Errors raised while structuring a parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum StructureError {
    /// A `while` loop had no corresponding rule annotation.
    MissingAnnotation,
    /// More rules were supplied than the command has loops.
    ExtraAnnotations(usize),
    /// A non-deterministic choice that is not an `if` desugaring.
    UnstructuredChoice(Cmd),
}

impl std::fmt::Display for StructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureError::MissingAnnotation => {
                write!(f, "a while loop is missing its rule annotation")
            }
            StructureError::ExtraAnnotations(n) => {
                write!(f, "{n} unused loop annotation(s)")
            }
            StructureError::UnstructuredChoice(c) => {
                write!(f, "choice is not an if-statement desugaring: {c}")
            }
        }
    }
}

impl std::error::Error for StructureError {}

fn structure_cmd(
    cmd: &Cmd,
    rules: &mut std::collections::VecDeque<LoopRule>,
) -> Result<Vec<AStmt>, StructureError> {
    match cmd {
        // while (b) {C} = (assume b; C)*; assume !b
        Cmd::Seq(star, exit) => {
            if let (Cmd::Star(inner), Cmd::Assume(nb)) = (&**star, &**exit) {
                if let Cmd::Seq(a, body) = &**inner {
                    if let Cmd::Assume(b) = &**a {
                        if *nb == b.clone().not() {
                            let rule =
                                rules.pop_front().ok_or(StructureError::MissingAnnotation)?;
                            return Ok(vec![AStmt::While {
                                guard: b.clone(),
                                rule,
                                body: structure_cmd(body, rules)?,
                            }]);
                        }
                    }
                }
            }
            let mut out = structure_cmd(star, rules)?;
            out.extend(structure_cmd(exit, rules)?);
            Ok(merge_basics(out))
        }
        // if (b) {C1} else {C2} = (assume b; C1) + (assume !b; C2)
        Cmd::Choice(l, r) => {
            if let (Cmd::Seq(a1, c1), Cmd::Seq(a2, c2)) = (&**l, &**r) {
                if let (Cmd::Assume(b), Cmd::Assume(nb)) = (&**a1, &**a2) {
                    if *nb == b.clone().not() {
                        return Ok(vec![AStmt::If {
                            guard: b.clone(),
                            then_b: structure_cmd(c1, rules)?,
                            else_b: structure_cmd(c2, rules)?,
                        }]);
                    }
                }
            }
            // One-armed if: (assume b; C) + (assume !b)
            if let (Cmd::Seq(a1, c1), Cmd::Assume(nb)) = (&**l, &**r) {
                if let Cmd::Assume(b) = &**a1 {
                    if *nb == b.clone().not() {
                        return Ok(vec![AStmt::If {
                            guard: b.clone(),
                            then_b: structure_cmd(c1, rules)?,
                            else_b: Vec::new(),
                        }]);
                    }
                }
            }
            Err(StructureError::UnstructuredChoice(cmd.clone()))
        }
        Cmd::Star(_) => Err(StructureError::UnstructuredChoice(cmd.clone())),
        atomic => Ok(vec![AStmt::Basic(atomic.clone())]),
    }
}

/// Fuses adjacent `Basic` statements back into command sequences.
fn merge_basics(stmts: Vec<AStmt>) -> Vec<AStmt> {
    let mut out: Vec<AStmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        match (out.last_mut(), s) {
            (Some(AStmt::Basic(prev)), AStmt::Basic(next)) => {
                *prev = Cmd::seq(prev.clone(), next);
            }
            (_, s) => out.push(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhl_lang::parse_cmd;

    #[test]
    fn erasure_matches_desugaring() {
        let prog = AStmt::While {
            guard: Expr::var("i").lt(Expr::var("n")),
            rule: LoopRule::Sync {
                inv: Assertion::low("i"),
            },
            body: vec![AStmt::Basic(Cmd::assign(
                "i",
                Expr::var("i") + Expr::int(1),
            ))],
        };
        assert_eq!(
            prog.command(),
            parse_cmd("while (i < n) { i := i + 1 }").unwrap()
        );
    }

    #[test]
    fn if_erasure() {
        let prog = AStmt::If {
            guard: Expr::var("l").gt(Expr::int(0)),
            then_b: vec![AStmt::Basic(Cmd::assign("y", Expr::int(1)))],
            else_b: vec![AStmt::Basic(Cmd::assign("y", Expr::int(0)))],
        };
        assert_eq!(
            prog.command(),
            parse_cmd("if (l > 0) { y := 1 } else { y := 0 }").unwrap()
        );
    }

    #[test]
    fn empty_sequence_is_skip() {
        assert_eq!(command_of(&[]), Cmd::Skip);
    }

    #[test]
    fn from_cmd_roundtrips_structured_programs() {
        for src in [
            "i := 0; while (i < n) { i := i + 1 }",
            "if (x > 0) { y := 1 } else { y := 2 }",
            "a := 1; if (x > 0) { y := 1 } else { y := 2 }; b := 2",
            "while (i < n) { if (x > 0) { i := i + 1 } else { i := i + 2 } }",
        ] {
            let cmd = parse_cmd(src).unwrap();
            let loops = src.matches("while").count();
            let rules = (0..loops)
                .map(|_| LoopRule::Sync {
                    inv: Assertion::tt(),
                })
                .collect();
            let prog = AProgram::from_cmd(Assertion::tt(), &cmd, Assertion::tt(), rules).unwrap();
            assert_eq!(prog.command(), cmd, "round-trip failed for {src}");
        }
    }

    #[test]
    fn from_cmd_reports_annotation_mismatches() {
        let cmd = parse_cmd("while (i < n) { i := i + 1 }").unwrap();
        assert!(matches!(
            AProgram::from_cmd(Assertion::tt(), &cmd, Assertion::tt(), vec![]),
            Err(StructureError::MissingAnnotation)
        ));
        let extra = vec![
            LoopRule::Sync {
                inv: Assertion::tt(),
            },
            LoopRule::Sync {
                inv: Assertion::tt(),
            },
        ];
        assert!(matches!(
            AProgram::from_cmd(Assertion::tt(), &cmd, Assertion::tt(), extra),
            Err(StructureError::ExtraAnnotations(1))
        ));
        let raw_choice = parse_cmd("{ x := 1 } + { x := 2 }").unwrap();
        assert!(matches!(
            AProgram::from_cmd(Assertion::tt(), &raw_choice, Assertion::tt(), vec![]),
            Err(StructureError::UnstructuredChoice(_))
        ));
    }
}
