//! Obligation discharge and verification reports.

use std::fmt;

use hhl_assert::{check_entailment, Counterexample, Env};
use hhl_core::{check_triple_in_env, ValidityConfig};

use crate::ast::AProgram;
use crate::vcgen::{vcgen, Obligation, VerifyError};

/// The outcome of one obligation.
#[derive(Clone, Debug)]
pub struct ObligationResult {
    /// The obligation.
    pub obligation: Obligation,
    /// `Ok` if discharged, else the counterexample.
    pub result: Result<(), Counterexample>,
}

/// A full verification report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-obligation outcomes, in generation order.
    pub results: Vec<ObligationResult>,
}

impl Report {
    /// True iff every obligation was discharged.
    pub fn verified(&self) -> bool {
        self.results.iter().all(|r| r.result.is_ok())
    }

    /// Number of obligations.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True iff there are no obligations (vacuously verified).
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The failed obligations.
    pub fn failures(&self) -> impl Iterator<Item = &ObligationResult> + '_ {
        self.results.iter().filter(|r| r.result.is_err())
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification {}: {} obligation(s)",
            if self.verified() {
                "SUCCEEDED"
            } else {
                "FAILED"
            },
            self.len()
        )?;
        for (i, r) in self.results.iter().enumerate() {
            let status = match &r.result {
                Ok(()) => "ok".to_owned(),
                Err(c) => format!("FAILED ({c})"),
            };
            writeln!(f, "  [{i}] {} — {status}", r.obligation)?;
        }
        Ok(())
    }
}

/// Generates and discharges all verification conditions of an annotated
/// program against the given model.
///
/// # Errors
///
/// [`VerifyError`] if VC generation itself fails (unstructured statement or
/// untransformable assertion); discharge failures are reported per
/// obligation in the returned [`Report`].
///
/// # Examples
///
/// ```
/// use hhl_assert::{Assertion, Universe};
/// use hhl_core::ValidityConfig;
/// use hhl_verify::{verify, AProgram, AStmt};
/// use hhl_lang::{parse_cmd, Cmd, Expr};
///
/// // {low(l)} l := l + 1 {low(l)} — one entailment VC, discharged.
/// let prog = AProgram::new(
///     Assertion::low("l"),
///     vec![AStmt::Basic(parse_cmd("l := l + 1").unwrap())],
///     Assertion::low("l"),
/// );
/// let cfg = ValidityConfig::new(Universe::int_cube(&["l"], 0, 1));
/// let report = verify(&prog, &cfg).unwrap();
/// assert!(report.verified());
/// ```
pub fn verify(prog: &AProgram, cfg: &ValidityConfig) -> Result<Report, VerifyError> {
    let obligations = vcgen(prog)?;
    let mut results = Vec::with_capacity(obligations.len());
    for ob in obligations {
        let result = discharge(&ob, cfg);
        results.push(ObligationResult {
            obligation: ob,
            result,
        });
    }
    Ok(Report { results })
}

fn discharge(ob: &Obligation, cfg: &ValidityConfig) -> Result<(), Counterexample> {
    match ob {
        Obligation::Entailment { pre, post, .. } => {
            check_entailment(pre, post, &cfg.universe, &cfg.check)
        }
        Obligation::Triple {
            triple, free_vals, ..
        } => {
            if free_vals.is_empty() {
                return check_triple_in_env(triple, &mut Env::new(), cfg);
            }
            // Enumerate bindings of the meta-quantified value variables.
            let mut envs = vec![Env::new()];
            for v in free_vals {
                let mut next = Vec::new();
                for env in &envs {
                    for value in &cfg.check.eval.values {
                        let mut e2 = env.clone();
                        e2.vals.insert(*v, value.clone());
                        next.push(e2);
                    }
                }
                envs = next;
            }
            for mut env in envs {
                check_triple_in_env(triple, &mut env, cfg)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AStmt, LoopRule};
    use hhl_assert::{Assertion, Universe};
    use hhl_lang::{parse_cmd, Cmd, ExecConfig, Expr};

    fn cfg(vars: &[&str], lo: i64, hi: i64) -> ValidityConfig {
        ValidityConfig::new(Universe::int_cube(vars, lo, hi))
            .with_exec(ExecConfig::int_range(lo, hi).fuel(8))
    }

    #[test]
    fn straightline_ni_verifies() {
        let prog = AProgram::new(
            Assertion::low("l"),
            vec![AStmt::Basic(parse_cmd("l := l * 2").unwrap())],
            Assertion::low("l"),
        );
        let report = verify(&prog, &cfg(&["l", "h"], 0, 1)).unwrap();
        assert!(report.verified(), "{report}");
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn leak_is_refuted_with_counterexample() {
        let prog = AProgram::new(
            Assertion::low("l"),
            vec![AStmt::Basic(parse_cmd("l := h").unwrap())],
            Assertion::low("l"),
        );
        let report = verify(&prog, &cfg(&["l", "h"], 0, 1)).unwrap();
        assert!(!report.verified());
        assert_eq!(report.failures().count(), 1);
        let failure = report.failures().next().unwrap();
        // The counterexample set genuinely violates the entailment.
        assert!(failure.result.is_err());
    }

    #[test]
    fn if_sync_wp_verifies_c2_shape_with_low_guard() {
        // if (l > 0) { y := 1 } else { y := 0 } preserves low(y) given
        // low(l): the guard is low, so IfSync applies.
        let prog = AProgram::new(
            Assertion::low("l"),
            vec![AStmt::If {
                guard: Expr::var("l").gt(Expr::int(0)),
                then_b: vec![AStmt::Basic(Cmd::assign("y", Expr::int(1)))],
                else_b: vec![AStmt::Basic(Cmd::assign("y", Expr::int(0)))],
            }],
            Assertion::low("y"),
        );
        let report = verify(&prog, &cfg(&["l", "y"], 0, 1)).unwrap();
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn if_with_high_guard_fails_lowness() {
        // C2: guard h > 0 is high — the IfSync WP demands low(h > 0), which
        // low(l) does not provide. This is exactly how the verifier reports
        // the §2.2 insecurity.
        let prog = AProgram::new(
            Assertion::low("l"),
            vec![AStmt::If {
                guard: Expr::var("h").gt(Expr::int(0)),
                then_b: vec![AStmt::Basic(Cmd::assign("l", Expr::int(1)))],
                else_b: vec![AStmt::Basic(Cmd::assign("l", Expr::int(0)))],
            }],
            Assertion::low("l"),
        );
        let report = verify(&prog, &cfg(&["l", "h"], 0, 1)).unwrap();
        assert!(!report.verified());
    }

    #[test]
    fn while_sync_counter_verifies() {
        // while (i < n) { i := i + 1 } with I = low(i) ∧ low(n) proves
        // low(i) at exit.
        let inv = Assertion::low("i").and(Assertion::low("n"));
        let prog = AProgram::new(
            inv.clone(),
            vec![AStmt::While {
                guard: Expr::var("i").lt(Expr::var("n")),
                rule: LoopRule::Sync { inv },
                body: vec![AStmt::Basic(Cmd::assign(
                    "i",
                    Expr::var("i") + Expr::int(1),
                ))],
            }],
            Assertion::low("i"),
        );
        let report = verify(&prog, &cfg(&["i", "n"], 0, 2)).unwrap();
        assert!(report.verified(), "{report}");
        assert_eq!(report.len(), 4); // lowness, preservation, exit, pre
    }

    #[test]
    fn while_sync_with_wrong_invariant_fails() {
        let inv = Assertion::low("i"); // forgets low(n): guard not low
        let prog = AProgram::new(
            inv.clone(),
            vec![AStmt::While {
                guard: Expr::var("i").lt(Expr::var("n")),
                rule: LoopRule::Sync { inv },
                body: vec![AStmt::Basic(Cmd::assign(
                    "i",
                    Expr::var("i") + Expr::int(1),
                ))],
            }],
            Assertion::low("i"),
        );
        let report = verify(&prog, &cfg(&["i", "n"], 0, 1)).unwrap();
        assert!(!report.verified());
    }

    #[test]
    fn unstructured_choice_is_rejected() {
        let prog = AProgram::new(
            Assertion::tt(),
            vec![AStmt::Basic(parse_cmd("{ x := 1 } + { x := 2 }").unwrap())],
            Assertion::tt(),
        );
        assert!(matches!(
            verify(&prog, &cfg(&["x"], 0, 2)),
            Err(VerifyError::UnstructuredCommand(_))
        ));
    }

    #[test]
    fn report_display_lists_obligations() {
        let prog = AProgram::new(
            Assertion::low("l"),
            vec![AStmt::Basic(parse_cmd("l := l + 1").unwrap())],
            Assertion::low("l"),
        );
        let report = verify(&prog, &cfg(&["l"], 0, 1)).unwrap();
        let text = report.to_string();
        assert!(text.contains("SUCCEEDED"));
        assert!(text.contains("program precondition"));
    }
}
