//! Backward verification-condition generation.
//!
//! Straight-line code gets *exact* weakest preconditions via the Fig. 3
//! transformations; conditionals use the `IfSync`-derived precondition
//! `low(b) ∧ wp(then, Q) ∧ wp(else, Q)`; loops produce the premises of their
//! annotated Fig. 5 rule. Obligations come in two kinds:
//!
//! * [`Obligation::Entailment`] — `P |= Q` checks (discharged by the
//!   finite-model entailment checker);
//! * [`Obligation::Triple`] — semantic triple checks for premises the
//!   syntactic fragment cannot express (e.g. `{I} if (b) {C} {I}` of
//!   `While-∀*∃*`), mirroring the `Oracle` nodes of the proof layer.

use std::fmt;

use hhl_assert::{assign_transform, assume_transform, havoc_transform};
use hhl_assert::{Assertion, HExpr, TransformError};
use hhl_core::Triple;
use hhl_lang::{Cmd, Symbol};

use crate::ast::{command_of, AProgram, AStmt};

/// A proof obligation emitted by the VC generator.
#[derive(Clone, Debug)]
pub enum Obligation {
    /// `pre |= post`.
    Entailment {
        /// Antecedent.
        pre: Assertion,
        /// Consequent.
        post: Assertion,
        /// Where the obligation came from.
        origin: String,
    },
    /// A triple to validate semantically. `free_vals` are meta-quantified
    /// value variables (`∀v. ⊢{…}` premises): the discharger checks every
    /// binding over its value domain.
    Triple {
        /// The triple.
        triple: Triple,
        /// Universally meta-quantified value variables left free in the
        /// triple.
        free_vals: Vec<Symbol>,
        /// Where the obligation came from.
        origin: String,
    },
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obligation::Entailment { pre, post, origin } => {
                write!(f, "[{origin}] {pre} |= {post}")
            }
            Obligation::Triple {
                triple,
                origin,
                free_vals,
            } => {
                if free_vals.is_empty() {
                    write!(f, "[{origin}] ⊨ {triple}")
                } else {
                    let vs: Vec<String> = free_vals.iter().map(|v| v.to_string()).collect();
                    write!(f, "[{origin}] ∀{}. ⊨ {triple}", vs.join(", "))
                }
            }
        }
    }
}

/// Errors raised during VC generation.
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// A `Basic` statement contained a loop or a choice (those must be
    /// expressed as structured `If`/`While` nodes).
    UnstructuredCommand(Cmd),
    /// A syntactic transformation failed (assertion outside Def. 9).
    Transform(TransformError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnstructuredCommand(c) => {
                write!(f, "basic statement must be loop- and choice-free: {c}")
            }
            VerifyError::Transform(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TransformError> for VerifyError {
    fn from(e: TransformError) -> VerifyError {
        VerifyError::Transform(e)
    }
}

/// Exact weakest precondition of a loop- and choice-free command.
fn wp_cmd(cmd: &Cmd, post: &Assertion) -> Result<Assertion, VerifyError> {
    match cmd {
        Cmd::Skip => Ok(post.clone()),
        Cmd::Assign(x, e) => Ok(assign_transform(*x, e, post)?),
        Cmd::Havoc(x) => Ok(havoc_transform(*x, post)?),
        Cmd::Assume(b) => Ok(assume_transform(b, post)?),
        Cmd::Seq(c1, c2) => {
            let mid = wp_cmd(c2, post)?;
            wp_cmd(c1, &mid)
        }
        Cmd::Choice(_, _) | Cmd::Star(_) => Err(VerifyError::UnstructuredCommand(cmd.clone())),
    }
}

/// Backward pass over a statement sequence: returns the computed
/// precondition and appends obligations.
fn wp_stmts(
    stmts: &[AStmt],
    post: &Assertion,
    obligations: &mut Vec<Obligation>,
) -> Result<Assertion, VerifyError> {
    let mut current = post.clone();
    for stmt in stmts.iter().rev() {
        current = wp_stmt(stmt, &current, obligations)?;
    }
    Ok(current)
}

fn wp_stmt(
    stmt: &AStmt,
    post: &Assertion,
    obligations: &mut Vec<Obligation>,
) -> Result<Assertion, VerifyError> {
    match stmt {
        AStmt::Basic(cmd) => wp_cmd(cmd, post),
        AStmt::If {
            guard,
            then_b,
            else_b,
        } => {
            // IfSync-derived WP: P ≜ low(b) ∧ wp(then, Q) ∧ wp(else, Q).
            // Sound because P ∧ □b |= wp(then, Q) and symmetrically.
            let wt = wp_stmts(then_b, post, obligations)?;
            let we = wp_stmts(else_b, post, obligations)?;
            Ok(Assertion::low_expr(guard).and(wt).and(we))
        }
        AStmt::While { guard, rule, body } => match rule {
            crate::ast::LoopRule::Sync { inv } => {
                // VC1: I |= low(b).
                obligations.push(Obligation::Entailment {
                    pre: inv.clone(),
                    post: Assertion::low_expr(guard),
                    origin: format!("WhileSync guard lowness (while {guard})"),
                });
                // VC2: I ∧ □b |= wp(body, I).
                let w_body = wp_stmts(body, inv, obligations)?;
                obligations.push(Obligation::Entailment {
                    pre: inv.clone().and(Assertion::box_pred(guard)),
                    post: w_body,
                    origin: format!("WhileSync invariant preservation (while {guard})"),
                });
                // VC3: the rule's postcondition entails Q.
                let rule_post = inv
                    .clone()
                    .or(Assertion::emp())
                    .and(Assertion::box_pred(&guard.clone().not()));
                obligations.push(Obligation::Entailment {
                    pre: rule_post,
                    post: post.clone(),
                    origin: format!("WhileSync exit (while {guard})"),
                });
                Ok(inv.clone())
            }
            crate::ast::LoopRule::ForallExists { inv } => {
                if !post.no_forall_state_after_exists_state() {
                    // The rule's side condition on Q.
                    obligations.push(Obligation::Entailment {
                        pre: Assertion::tt(),
                        post: Assertion::ff(),
                        origin: format!(
                            "While-∀*∃* side condition violated: Q has ∀⟨_⟩ after ∃ \
                             (while {guard})"
                        ),
                    });
                }
                // Premise {I} if (b) {C} {I}: semantic obligation.
                let if_cmd = Cmd::if_then(guard.clone(), command_of(body));
                obligations.push(Obligation::Triple {
                    triple: Triple::new(inv.clone(), if_cmd, inv.clone()),
                    free_vals: Vec::new(),
                    origin: format!("While-∀*∃* unrolling invariant (while {guard})"),
                });
                // Premise {I} assume ¬b {Q}: exact via Π.
                let exit_pre = assume_transform(&guard.clone().not(), post)?;
                obligations.push(Obligation::Entailment {
                    pre: inv.clone(),
                    post: exit_pre,
                    origin: format!("While-∀*∃* exit (while {guard})"),
                });
                Ok(inv.clone())
            }
            crate::ast::LoopRule::Exists {
                phi,
                p_body,
                q_body,
                variant,
            } => {
                let b_at = Assertion::Atom(HExpr::of_expr_at(guard, *phi));
                let e_at = HExpr::of_expr_at(variant, *phi);
                let v = Symbol::new("v‹variant›");
                let pre1 = Assertion::exists_state(
                    *phi,
                    p_body
                        .clone()
                        .and(b_at)
                        .and(Assertion::Atom(HExpr::Val(v).eq(e_at.clone()))),
                );
                let post1 = Assertion::exists_state(
                    *phi,
                    p_body.clone().and(Assertion::Atom(
                        HExpr::int(0).le(e_at.clone()).and(e_at.lt(HExpr::Val(v))),
                    )),
                );
                let if_cmd = Cmd::if_then(guard.clone(), command_of(body));
                // Premise 1 (∀v): semantic obligation with v left free; the
                // discharger enumerates its value domain.
                obligations.push(Obligation::Triple {
                    triple: Triple::new(pre1, if_cmd, post1),
                    free_vals: vec![v],
                    origin: format!("While-∃ variant decrease (while {guard})"),
                });
                // Premise 2 (∀φ): the state variable φ stays free; the
                // discharger binds it over the universe.
                let loop_cmd = Cmd::while_loop(guard.clone(), command_of(body));
                obligations.push(Obligation::Triple {
                    triple: Triple::new(p_body.clone(), loop_cmd, q_body.clone()),
                    free_vals: Vec::new(),
                    origin: format!("While-∃ fixed-witness premise (while {guard}, φ = {phi})"),
                });
                // Conclusion's postcondition entails Q.
                obligations.push(Obligation::Entailment {
                    pre: Assertion::exists_state(*phi, q_body.clone()),
                    post: post.clone(),
                    origin: format!("While-∃ exit (while {guard})"),
                });
                Ok(Assertion::exists_state(*phi, p_body.clone()))
            }
        },
    }
}

/// Generates the verification conditions for an annotated program: the
/// loop-rule premises plus the top-level `pre |= wp(stmts, post)`.
///
/// # Errors
///
/// [`VerifyError`] when a basic statement is unstructured or an assertion
/// falls outside the transformable fragment.
pub fn vcgen(prog: &AProgram) -> Result<Vec<Obligation>, VerifyError> {
    let mut obligations = Vec::new();
    let computed_pre = wp_stmts(&prog.stmts, &prog.post, &mut obligations)?;
    obligations.push(Obligation::Entailment {
        pre: prog.pre.clone(),
        post: computed_pre,
        origin: "program precondition".to_owned(),
    });
    Ok(obligations)
}
