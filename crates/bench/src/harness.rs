//! A minimal, std-only benchmark harness with a Criterion-shaped API.
//!
//! The build environment is offline, so the benches cannot depend on the
//! `criterion` crate. This module reimplements the slice of its surface the
//! bench files use — [`Harness::bench_function`], benchmark groups with
//! per-group sample sizes, [`BenchmarkId`] — over `std::time::Instant`.
//! Each benchmark reports the median, minimum and maximum per-iteration
//! time across its samples; absolute numbers are machine-local, the shape
//! across workload parameters is the reproducible series.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Soft cap on the total time spent in one benchmark.
const TOTAL_BUDGET: Duration = Duration::from_secs(2);
const DEFAULT_SAMPLES: usize = 20;
const MIN_SAMPLES: usize = 3;

/// A `group/parameter` benchmark identifier, mirroring Criterion's.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Runs closures under timing; passed to the `b.iter(..)` callbacks.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, shielding the result from the optimizer.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_samples(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: one untimed warmup call, then size samples to the target.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let single = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;
    let per_sample = single * iters as u32;
    let samples = if per_sample * samples as u32 > TOTAL_BUDGET {
        ((TOTAL_BUDGET.as_nanos() / per_sample.as_nanos().max(1)) as usize)
            .clamp(MIN_SAMPLES, samples)
    } else {
        samples
    };

    let mut per_iter: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {label:<44} median {median:>12?}  (min {:?}, max {:?}, {samples} samples × {iters} iters)",
        per_iter[0],
        per_iter[per_iter.len() - 1],
    );
}

/// The top-level harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Harness {}

impl Harness {
    /// Creates a harness.
    pub fn new() -> Harness {
        Harness {}
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Harness {
        run_samples(id, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            _harness: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct Group<'a> {
    _harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(MIN_SAMPLES);
        self
    }

    /// Benchmarks `f` against one `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_samples(&label, self.samples, |b| f(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_samples(&label, self.samples, f);
        self
    }

    /// Closes the group (provided for API parity; no state to flush).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn groups_and_ids_render() {
        assert_eq!(BenchmarkId::new("wp", 8).to_string(), "wp/8");
        let mut h = Harness::new();
        let mut g = h.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("noop", 1), &1, |b, _| b.iter(|| ()));
        g.finish();
    }
}
