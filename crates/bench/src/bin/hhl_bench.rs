//! The `hhl-bench` tool: seeded corpus generation and the perf-regression
//! gate.
//!
//! * `hhl-bench corpus [--out DIR] [--seed N] [--entries N]` — write the
//!   deterministic batch corpus (specs + replay certificates) into `DIR`
//!   (default `examples/corpus`, 130 entries). Regenerating with the same
//!   seed is byte-identical, which CI uses to detect drift against the
//!   checked-in corpus; `--entries` scales the corpus prefix-stably (the
//!   first 130 entries never change), which CI uses for the 1000-entry
//!   scheduling workload.
//! * `hhl-bench compare [--full] [--max-regress PCT] <BENCH_*.json>…` —
//!   re-run each baseline's suite (fast mode unless `--full`), print a
//!   delta table, and exit `1` if any series regressed by more than `PCT`
//!   percent (default 35). Missing/new series are reported but never fail
//!   the gate (they mean the suite changed shape, not that it got slower).
//!   The driver suite additionally enforces the parallel-scaling gate on
//!   `speedup_jobs8_vs_jobs1`: the recorded baseline curve must satisfy
//!   the contract exactly (>= 1.0) and the fresh fast-mode re-measure
//!   must stay above a noise floor (0.90). The same two-check shape gates
//!   `speedup_pool_resident_vs_burst` — the resident worker pool must
//!   never be slower per submission than the scoped per-call burst — and
//!   `speedup_serve_concurrent_interleaved_vs_serial` — two requests
//!   dispatched concurrently against one engine must never be slower than
//!   draining them back-to-back.
//!
//! Exit codes: `0` clean, `1` regression detected, `2` usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use hhl_bench::{corpus, suites};

const USAGE: &str = "usage: hhl-bench <command> [args]

  hhl-bench corpus [--out DIR] [--seed N] [--entries N]
      Generate the deterministic batch-verification corpus (.hhl specs,
      replay entries with sibling .hhlp certificates) into DIR (default
      examples/corpus, 130 entries). Same seed => byte-identical files;
      --entries scales the corpus with a byte-identical 130-entry prefix.

  hhl-bench compare [--full] [--max-regress PCT] <BENCH_*.json>...
      Re-run each baseline's measurement suite (fast mode by default) and
      diff medians against the checked-in baseline, failing on any series
      more than PCT percent slower (default 35). The driver suite also
      fails when the recorded speedup_jobs8_vs_jobs1,
      speedup_pool_resident_vs_burst or
      speedup_serve_concurrent_interleaved_vs_serial is below 1.0 or a
      fresh re-measure drops below 0.90, and prints slowest-file /
      slowest-rule telemetry tables from its instrumented batch pass.

  hhl-bench report-check <report.json>...
      Validate `hhl batch --report json` output: the document must carry
      the hhl-report v1 schema, round-trip byte-identically through the
      parser, and keep its summary consistent with its per-file entries.

  Exit codes: 0 clean, 1 regression, 2 usage/IO/validation errors.";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("examples/corpus");
    let mut seed = corpus::DEFAULT_SEED;
    let mut entries_n = 130usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage_error("--out needs a directory"),
            },
            "--seed" => match it.next().map(|s| parse_seed(s)) {
                Some(Ok(s)) => seed = s,
                _ => return usage_error("--seed needs an integer (decimal or 0x-hex)"),
            },
            "--entries" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => entries_n = n,
                _ => return usage_error("--entries needs a positive integer"),
            },
            other => return usage_error(&format!("unknown corpus argument {other:?}")),
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let entries = corpus::generate_n(seed, entries_n);
    let (mut specs, mut certs) = (0usize, 0usize);
    for entry in &entries {
        let spec_path = out_dir.join(format!("{}.hhl", entry.name));
        if let Err(e) = std::fs::write(&spec_path, &entry.spec) {
            eprintln!("error: cannot write {}: {e}", spec_path.display());
            return ExitCode::from(2);
        }
        specs += 1;
        if let Some(cert) = &entry.certificate {
            let cert_path = out_dir.join(format!("{}.hhlp", entry.name));
            if let Err(e) = std::fs::write(&cert_path, cert) {
                eprintln!("error: cannot write {}: {e}", cert_path.display());
                return ExitCode::from(2);
            }
            certs += 1;
        }
    }
    println!(
        "corpus: {specs} spec(s) + {certs} certificate(s) written to {} (seed {seed:#x})",
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn parse_seed(s: &str) -> Result<u64, std::num::ParseIntError> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
}

/// Fresh `(name, ns)` series, `(key, value)` meta pairs, and rendered
/// telemetry table lines from a re-run.
type FreshSuite = (Vec<(String, u128)>, Vec<(String, String)>, Vec<String>);

/// Re-runs the suite a baseline belongs to and returns the fresh series
/// plus the fresh `meta` pairs and telemetry tables (both empty for
/// suites without them).
fn rerun(kind: &str, fast: bool) -> Option<FreshSuite> {
    match kind {
        "proofs" => Some((suites::proofs(fast), Vec::new(), Vec::new())),
        "driver" => {
            let suite = suites::driver(fast);
            Some((suite.results, suite.meta, suite.tables))
        }
        _ => None,
    }
}

/// Floor for the *freshly measured* `speedup_jobs8_vs_jobs1`: fast mode
/// re-measures with few repeats on a possibly loaded runner, so the fresh
/// point only fails on a real regression (the fixed jobs>1 slowdown sat at
/// 0.66–0.89), never on measurement noise around parity.
const FRESH_SCALING_FLOOR: f64 = 0.90;

/// The parallel-scaling gate, two checks on `speedup_jobs8_vs_jobs1`:
/// the **recorded baseline** curve is deterministic checked-in data and
/// must satisfy the scaling contract exactly (>= 1.0 — extra workers over
/// the contention-free caches may be a wash on a single hardware thread,
/// but they must never make the batch *slower*); the **fresh** fast-mode
/// re-measure must stay above [`FRESH_SCALING_FLOOR`]. Returns the number
/// of gate failures.
fn scaling_gate(baseline_meta: &[(String, String)], fresh_meta: &[(String, String)]) -> usize {
    let top = format!(
        "speedup_jobs{}_vs_jobs1",
        suites::SCALING_JOBS[suites::SCALING_JOBS.len() - 1]
    );
    let curve: Vec<&(String, String)> = fresh_meta
        .iter()
        .filter(|(k, _)| k.starts_with("speedup_jobs") && k.ends_with("_vs_jobs1"))
        .collect();
    if curve.is_empty() {
        // Not the driver suite: nothing to gate.
        return 0;
    }
    let rendered: Vec<String> = curve.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("scaling curve (fresh): {}", rendered.join(" "));
    two_point_gate(&top, "parallel scaling", baseline_meta, fresh_meta)
}

/// The pool-executor gate on `speedup_pool_resident_vs_burst`: submitting
/// to the resident pool must never cost more than spawning a scoped burst
/// (recorded >= 1.0 exactly; fresh re-measure above the same noise floor
/// as the scaling curve). Skipped for suites whose fresh meta lacks the
/// key (only the driver suite measures it).
fn pool_gate(baseline_meta: &[(String, String)], fresh_meta: &[(String, String)]) -> usize {
    let key = "speedup_pool_resident_vs_burst";
    let fresh = fresh_meta.iter().find(|(k, _)| k == key);
    let Some((_, value)) = fresh else {
        return 0;
    };
    println!("pool executor (fresh): {key}={value}");
    two_point_gate(key, "pool executor", baseline_meta, fresh_meta)
}

/// The cross-request scheduling gate on
/// `speedup_serve_concurrent_interleaved_vs_serial`: two requests
/// dispatched concurrently against one engine must never be slower than
/// draining them back-to-back (recorded >= 1.0 exactly; fresh
/// re-measure above the shared noise floor). Skipped for suites whose
/// fresh meta lacks the key (only the driver suite measures it).
fn serve_concurrent_gate(
    baseline_meta: &[(String, String)],
    fresh_meta: &[(String, String)],
) -> usize {
    let key = "speedup_serve_concurrent_interleaved_vs_serial";
    let fresh = fresh_meta.iter().find(|(k, _)| k == key);
    let Some((_, value)) = fresh else {
        return 0;
    };
    println!("serve concurrency (fresh): {key}={value}");
    two_point_gate(key, "serve concurrency", baseline_meta, fresh_meta)
}

/// The shared two-check gate shape: the **recorded baseline** point is
/// deterministic checked-in data and must satisfy its contract exactly
/// (>= 1.0); the **fresh** fast-mode re-measure only fails below
/// [`FRESH_SCALING_FLOOR`]. Returns the number of failures.
fn two_point_gate(
    key: &str,
    what: &str,
    baseline_meta: &[(String, String)],
    fresh_meta: &[(String, String)],
) -> usize {
    let point = |meta: &[(String, String)]| {
        meta.iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<f64>().ok())
    };
    let mut failures = 0;
    match point(baseline_meta) {
        Some(recorded) if recorded < 1.0 => {
            eprintln!("{what} contract broken: recorded {key} = {recorded:.2} < 1.00");
            failures += 1;
        }
        Some(_) => {}
        None => {
            eprintln!("{what} gate: baseline meta lacks {key} (regenerate the baseline)");
            failures += 1;
        }
    }
    match point(fresh_meta) {
        Some(fresh) if fresh < FRESH_SCALING_FLOOR => {
            eprintln!("{what} regressed: fresh {key} = {fresh:.2} < {FRESH_SCALING_FLOOR:.2}");
            failures += 1;
        }
        Some(_) => {}
        None => {
            eprintln!("{what} gate: fresh meta lacks {key}");
            failures += 1;
        }
    }
    failures
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut fast = true;
    let mut max_regress = 35.0f64;
    let mut baselines = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => fast = false,
            "--max-regress" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(pct)) if pct > 0.0 => max_regress = pct,
                _ => return usage_error("--max-regress needs a positive percentage"),
            },
            path => baselines.push(path.to_owned()),
        }
    }
    if baselines.is_empty() {
        return usage_error("`hhl-bench compare` needs at least one baseline file");
    }

    let mut regressions = 0usize;
    for path in &baselines {
        let json = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(kind) = suites::parse_bench_kind(&json) else {
            eprintln!("error: {path}: no \"bench\" field");
            return ExitCode::from(2);
        };
        let old = suites::parse_results(&json);
        if old.is_empty() {
            eprintln!("error: {path}: no results to compare");
            return ExitCode::from(2);
        }
        let Some((new, new_meta, tables)) = rerun(&kind, fast) else {
            eprintln!("error: {path}: unknown bench kind {kind:?}");
            return ExitCode::from(2);
        };

        println!(
            "== {path} ({kind} suite, {} mode, gate {max_regress:.0}%)",
            if fast { "fast" } else { "full" }
        );
        println!(
            "{:<44} {:>12} {:>12} {:>9}",
            "series", "baseline", "now", "delta"
        );
        for (name, old_ns) in &old {
            match new.iter().find(|(n, _)| n == name) {
                Some((_, new_ns)) => {
                    let delta = (*new_ns as f64 / (*old_ns).max(1) as f64 - 1.0) * 100.0;
                    let flag = if delta > max_regress {
                        regressions += 1;
                        "  REGRESSED"
                    } else {
                        ""
                    };
                    println!("{name:<44} {old_ns:>10}ns {new_ns:>10}ns {delta:>+8.1}%{flag}");
                }
                None => println!("{name:<44} {old_ns:>10}ns {:>12} {:>9}", "gone", "-"),
            }
        }
        for (name, new_ns) in &new {
            if !old.iter().any(|(n, _)| n == name) {
                println!("{name:<44} {:>12} {new_ns:>10}ns {:>9}", "new", "-");
            }
        }
        let baseline_meta = suites::parse_meta(&json);
        regressions += scaling_gate(&baseline_meta, &new_meta);
        regressions += pool_gate(&baseline_meta, &new_meta);
        regressions += serve_concurrent_gate(&baseline_meta, &new_meta);
        // Telemetry tables from the fresh instrumented pass: where the
        // batch spent its time, by file and by rule. Informational only —
        // timings never gate.
        for line in &tables {
            println!("{line}");
        }
        println!();
    }

    if regressions > 0 {
        eprintln!("{regressions} series regressed beyond the gate");
        ExitCode::from(1)
    } else {
        println!("no regression beyond the gate");
        ExitCode::SUCCESS
    }
}

/// Validates one `hhl batch --report json` document: schema, parse ∘ emit
/// round-trip identity, and summary-vs-files consistency. Returns a
/// human-readable failure description on the first violated property.
fn check_report(json: &str) -> Result<hhl_driver::ReportDoc, String> {
    let doc = hhl_driver::metrics::parse_report(json)?;
    let rendered = hhl_driver::metrics::render_report(&doc);
    if json.trim_end() != rendered.trim_end() {
        return Err("document does not round-trip through parse ∘ render".to_owned());
    }
    let summary = &doc.summary;
    if summary.files != doc.files.len() as u64 {
        return Err(format!(
            "summary says {} file(s) but {} entries are listed",
            summary.files,
            doc.files.len()
        ));
    }
    let by_status = |status: &str| doc.files.iter().filter(|f| f.status == status).count() as u64;
    if summary.unexpected != by_status("unexpected") || summary.errors != by_status("error") {
        return Err("summary counts disagree with per-file statuses".to_owned());
    }
    for entry in &doc.files {
        for (stage, ns) in &entry.stages {
            if *ns == 0 {
                return Err(format!("{}: zero-span {stage} stage recorded", entry.path));
            }
        }
    }
    Ok(doc)
}

fn cmd_report_check(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage_error("`hhl-bench report-check` needs at least one report file");
    }
    for path in args {
        let json = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_report(&json) {
            Ok(doc) => println!(
                "{path}: ok — {} file(s), {} stage serie(s), {} rule(s)",
                doc.summary.files,
                doc.stages.len(),
                doc.rules.len()
            ),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // `compare --fast` re-runs the driver suite in-process; cap malloc
    // arenas before its first pool burst so the gate measures scheduling,
    // not allocator page re-faulting (see hhl_driver::tune_allocator).
    hhl_driver::tune_allocator();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("report-check") => cmd_report_check(&args[1..]),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
