//! Regenerates the paper's Fig. 1 capability matrix.
//!
//! Run with `cargo run -p hhl-bench --bin fig01_matrix`.

fn main() {
    println!("Fig. 1 — Hoare-logic capability matrix (paper, PLDI 2024)\n");
    print!("{}", hhl_logics::render_matrix());
    println!();
    println!("✓ = expressible in Hyper Hoare Logic (demonstrated by the cited artifact);");
    println!("∅ = no prior Hoare logic covers the cell (paper's Fig. 1).");
}
