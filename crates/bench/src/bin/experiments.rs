//! Runs every experiment in the DESIGN.md index end-to-end and prints the
//! paper-claim vs. measured-outcome table that backs EXPERIMENTS.md.
//!
//! Run with `cargo run -p hhl-bench --bin experiments`.

use std::time::Instant;

use hhl_assert::{Assertion, EntailConfig, EvalConfig, HExpr, Universe};
use hhl_bench::{c2_ni, fig10_qif, fig4_proof, fig7_fib, fig8_minimum};
use hhl_core::proof::check;
use hhl_core::{check_triple, find_violating_set, witness_triple, Triple, ValidityConfig};
use hhl_lang::{parse_cmd, ExecConfig, Value};

struct Row {
    id: &'static str,
    claim: &'static str,
    measured: String,
    ok: bool,
    millis: u128,
}

fn timed<F: FnOnce() -> (String, bool)>(id: &'static str, claim: &'static str, f: F) -> Row {
    let start = Instant::now();
    let (measured, ok) = f();
    Row {
        id,
        claim,
        measured,
        ok,
        millis: start.elapsed().as_millis(),
    }
}

fn main() {
    let mut rows = Vec::new();

    rows.push(timed("Fig. 1", "24-cell capability matrix; HHL covers all 19 applicable cells", || {
        let cells = hhl_logics::fig1_matrix();
        let applicable = cells.iter().filter(|c| c.applicable).count();
        let covered = cells.iter().filter(|c| c.applicable && c.hhl).count();
        let empties = cells
            .iter()
            .filter(|c| c.applicable && c.prior_logics.is_empty())
            .count();
        (
            format!("{covered}/{applicable} covered, {empties} ∅-cells (paper: 8 beyond prior logics)"),
            covered == applicable,
        )
    }));

    rows.push(timed(
        "§2.1 P1/P2",
        "C0 = randIntBounded(0,9): P1 over-, P2 underapprox. both valid",
        || {
            let c0 = parse_cmd("x := randIntBounded(0, 9)").expect("parses");
            let cfg = ValidityConfig::new(Universe::int_cube(&["x"], 0, 1))
                .with_exec(ExecConfig::int_range(-2, 11))
                .with_check(EntailConfig {
                    eval: EvalConfig::int_range(-2, 11),
                    ..EntailConfig::default()
                });
            let p1 = Triple::new(
                Assertion::tt(),
                c0.clone(),
                Assertion::box_pred(
                    &hhl_lang::Expr::int(0)
                        .le(hhl_lang::Expr::var("x"))
                        .and(hhl_lang::Expr::var("x").le(hhl_lang::Expr::int(9))),
                ),
            );
            let p2 = Triple::new(
                Assertion::not_emp(),
                c0,
                Assertion::forall_val(
                    "n",
                    Assertion::Atom(
                        HExpr::int(0)
                            .le(HExpr::val("n"))
                            .and(HExpr::val("n").le(HExpr::int(9))),
                    )
                    .implies(Assertion::exists_state(
                        "phi",
                        Assertion::Atom(HExpr::pvar("phi", "x").eq(HExpr::val("n"))),
                    )),
                ),
            );
            let ok = check_triple(&p1, &cfg).is_ok() && check_triple(&p2, &cfg).is_ok();
            (
                format!(
                    "P1 valid: {}, P2 valid: {}",
                    check_triple(&p1, &cfg).is_ok(),
                    check_triple(&p2, &cfg).is_ok()
                ),
                ok,
            )
        },
    ));

    rows.push(timed(
        "§2.2 / Thm. 5",
        "C2 violates NI; violation provable as a hyper-triple",
        || {
            let (ni, cfg) = c2_ni();
            let bad = find_violating_set(&ni, &cfg);
            match bad {
                Some(set) => {
                    let wt = witness_triple(&ni, &set);
                    let ok = check_triple(&wt, &cfg).is_ok();
                    (format!("NI refuted; Thm. 5 witness valid: {ok}"), ok)
                }
                None => ("NI unexpectedly held".to_owned(), false),
            }
        },
    ));

    rows.push(timed(
        "§2.3 GNI",
        "XOR pad satisfies GNI; bounded additive pad violates it",
        || {
            let gni = Assertion::gni("h", "l");
            let otp = parse_cmd("y := nonDet(); l := h ^ y").expect("parses");
            let cfg = ValidityConfig::new(Universe::product(
                &[("h", (0..=3).map(Value::Int).collect())],
                &[],
            ))
            .with_exec(ExecConfig::int_range(0, 3));
            let holds =
                check_triple(&Triple::new(Assertion::low("l"), otp, gni.clone()), &cfg).is_ok();

            let (proof, ctx) = fig4_proof();
            let violation = check(&proof, &ctx).is_ok();
            (
                format!("GNI(OTP): {holds}; Fig. 4 ¬GNI proof checks: {violation}"),
                holds && violation,
            )
        },
    ));

    rows.push(timed(
        "Fig. 4",
        "¬GNI proof outline checks with 0 semantic admissions",
        || {
            let (proof, ctx) = fig4_proof();
            match check(&proof, &ctx) {
                Ok(p) => (
                    format!(
                        "rules: {}, entailments: {}, admissions: {}",
                        p.stats.rules, p.stats.entailments, p.stats.oracle_admissions
                    ),
                    p.stats.oracle_admissions == 0,
                ),
                Err(e) => (format!("proof rejected: {e}"), false),
            }
        },
    ));

    rows.push(timed(
        "Fig. 7 / App. F",
        "Fibonacci is monotonic (While-∀*∃* reasoning)",
        || {
            let (t, cfg) = fig7_fib(3);
            let ok = check_triple(&t, &cfg).is_ok();
            (format!("monotonicity over n ≤ 3: {ok}"), ok)
        },
    ));

    rows.push(timed(
        "Fig. 8 / App. G",
        "∃*∀*: a minimal execution exists (While-∃)",
        || {
            let (t, cfg) = fig8_minimum(2);
            let ok = check_triple(&t, &cfg).is_ok();
            (format!("minimality over k ≤ 2: {ok}"), ok)
        },
    ));

    rows.push(timed(
        "Fig. 10 / App. B",
        "exactly v+1 distinct outputs (set-cardinality property)",
        || {
            let mut all = true;
            let mut detail = String::new();
            for v in 0..=2 {
                let (t, cfg) = fig10_qif(v);
                let ok = check_triple(&t, &cfg).is_ok();
                all &= ok;
                detail.push_str(&format!("v={v}:{} ", if ok { "✓" } else { "✗" }));
            }
            (detail, all)
        },
    ));

    println!("Hyper Hoare Logic — experiment suite (paper claim vs. measured)\n");
    println!(
        "{:<18} {:<62} {:<8} {:>8}",
        "Experiment", "Measured", "Agrees", "ms"
    );
    println!("{}", "-".repeat(100));
    let mut failures = 0;
    for r in &rows {
        if !r.ok {
            failures += 1;
        }
        println!(
            "{:<18} {:<62} {:<8} {:>8}",
            r.id,
            r.measured,
            if r.ok { "✓" } else { "✗" },
            r.millis
        );
        println!("{:<18} claim: {}", "", r.claim);
    }
    println!("{}", "-".repeat(100));
    println!(
        "{} experiments, {} agree, {} disagree",
        rows.len(),
        rows.len() - failures,
        failures
    );
    std::process::exit(i32::from(failures > 0));
}
