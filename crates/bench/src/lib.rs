//! # hhl-bench — benchmark workloads and figure regeneration
//!
//! Shared workload builders used by the [`harness`] benches (`benches/`)
//! and the regeneration binaries (`src/bin/fig01_matrix.rs`,
//! `src/bin/experiments.rs`). Each function corresponds to a row of the
//! experiment index in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod harness;
pub mod suites;

use hhl_assert::{assign_transform, assume_transform, Assertion, EntailConfig, HExpr, Universe};
use hhl_core::proof::{Derivation, ProofContext};
use hhl_core::{Triple, ValidityConfig};
use hhl_lang::{parse_cmd, Cmd, ExecConfig, Expr, Symbol, Value};

/// The Fig. 4 proof tree (GNI violation of `C4`) and its checking context.
pub fn fig4_proof() -> (Derivation, ProofContext) {
    let q = Assertion::gni_violation("h", "l");
    let e = Expr::var("h") + Expr::var("y");
    let d_assign = Derivation::AssignS {
        x: Symbol::new("l"),
        e: e.clone(),
        post: q.clone(),
    };
    let after_assign = assign_transform(Symbol::new("l"), &e, &q).expect("𝒜 applies");
    let b = Expr::var("y").le(Expr::int(9));
    let d_assume = Derivation::AssumeS {
        b: b.clone(),
        post: after_assign.clone(),
    };
    let after_assume = assume_transform(&b, &after_assign).expect("Π applies");
    let d_havoc = Derivation::HavocS {
        x: Symbol::new("y"),
        post: after_assume,
    };
    let pre = Assertion::exists2(|a, b| {
        Assertion::Atom(HExpr::PVar(a, "h".into()).ne(HExpr::PVar(b, "h".into())))
    });
    let proof = Derivation::cons(pre, q, Derivation::seq_all([d_havoc, d_assume, d_assign]));
    let ctx = ProofContext::new(
        ValidityConfig::new(Universe::product(
            &[("h", vec![Value::Int(0), Value::Int(20)])],
            &[],
        ))
        .with_exec(ExecConfig::int_range(5, 9)),
    );
    (proof, ctx)
}

/// The Fig. 7 Fibonacci monotonicity triple for a given `n` bound, with its
/// validity configuration.
pub fn fig7_fib(n_max: i64) -> (Triple, ValidityConfig) {
    let fib = parse_cmd(
        "a := 0; b := 1; i := 0;
         while (i < n) { tmp := b; b := a + b; a := tmp; i := i + 1 }",
    )
    .expect("fib parses");
    let mono = |x: &str| {
        Assertion::forall2(|p1, p2| {
            Assertion::Atom(
                HExpr::LVar(p1, "t".into())
                    .eq(HExpr::int(1))
                    .and(HExpr::LVar(p2, "t".into()).eq(HExpr::int(2))),
            )
            .implies(Assertion::Atom(
                HExpr::PVar(p1, x.into()).ge(HExpr::PVar(p2, x.into())),
            ))
        })
    };
    let universe = Universe::product(&[("n", (0..=n_max).map(Value::Int).collect())], &[])
        .tag_logical("t", &[Value::Int(1), Value::Int(2)]);
    let cfg = ValidityConfig::new(universe)
        .with_exec(ExecConfig::int_range(0, n_max).fuel(n_max as u32 + 4))
        .with_check(EntailConfig {
            max_subset_size: 2,
            ..EntailConfig::default()
        });
    (Triple::new(mono("n"), fib, mono("a")), cfg)
}

/// The Fig. 8 minimal-execution triple for a given iteration bound `k_max`.
pub fn fig8_minimum(k_max: i64) -> (Triple, ValidityConfig) {
    let program = parse_cmd(
        "x := 0; y := 0; i := 0;
         while (i < k) {
           r := nonDet(); assume r >= 2;
           t := x; x := 2 * x + r; y := y + t * r; i := i + 1
         }",
    )
    .expect("C_m parses");
    let has_min_xy = Assertion::exists_state(
        "phi",
        Assertion::forall_state(
            "alpha",
            Assertion::Atom(
                HExpr::pvar("phi", "x")
                    .le(HExpr::pvar("alpha", "x"))
                    .and(HExpr::pvar("phi", "y").le(HExpr::pvar("alpha", "y"))),
            ),
        ),
    );
    let pre = Assertion::not_emp().and(Assertion::box_pred(&Expr::var("k").ge(Expr::int(0))));
    let cfg = ValidityConfig::new(Universe::product(
        &[("k", (0..=k_max).map(Value::Int).collect())],
        &[],
    ))
    .with_exec(ExecConfig::with_domain([Value::Int(2), Value::Int(3)]).fuel(k_max as u32 + 2))
    .with_check(EntailConfig {
        max_subset_size: 2,
        ..EntailConfig::default()
    });
    (Triple::new(pre, program, has_min_xy), cfg)
}

/// The Fig. 10 quantitative-flow triple (exact output count) for a given
/// public bound `v`.
pub fn fig10_qif(v: i64) -> (Triple, ValidityConfig) {
    let c_l = parse_cmd(
        "o := 0; i := 0;
         while (i < min(l, h)) {
           r := nonDet(); assume 0 <= r && r <= 1; o := o + r; i := i + 1
         }",
    )
    .expect("C_l parses");
    let pre = Assertion::box_pred(
        &Expr::var("h")
            .ge(Expr::int(0))
            .and(Expr::var("l").eq(Expr::int(v))),
    )
    .and(Assertion::exists_state(
        "phi",
        Assertion::Atom(HExpr::pvar("phi", "h").ge(HExpr::int(v))),
    ));
    let card = Assertion::Card {
        state: Symbol::new("phi"),
        proj: HExpr::pvar("phi", "o"),
        op: hhl_lang::BinOp::Eq,
        bound: HExpr::int(v + 1),
    };
    let cfg = ValidityConfig::new(Universe::product(
        &[
            ("l", vec![Value::Int(v)]),
            ("h", (0..=v.max(1)).map(Value::Int).collect()),
        ],
        &[],
    ))
    .with_exec(ExecConfig::int_range(0, 1).fuel(v as u32 + 4))
    .with_check(EntailConfig {
        max_subset_size: 2,
        ..EntailConfig::default()
    });
    (Triple::new(pre, c_l, card), cfg)
}

/// A chain of `n` assignments (WP-generation workload for Fig. 3 scaling).
pub fn assignment_chain(n: usize) -> Cmd {
    Cmd::seq_all((0..n).map(|i| Cmd::assign("x", Expr::var("x") + Expr::int((i % 3) as i64 + 1))))
}

/// The §2.2 `C2` NI triple and config (baseline workload).
pub fn c2_ni() -> (Triple, ValidityConfig) {
    let c2 = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").expect("C2 parses");
    let cfg = ValidityConfig::new(Universe::int_cube(&["h", "l"], -1, 1));
    (
        Triple::new(Assertion::low("l"), c2, Assertion::low("l")),
        cfg,
    )
}
