//! Reusable measurement suites behind the `cargo bench` targets and the
//! `hhl-bench compare` regression gate.
//!
//! Each suite returns `(name, median_ns)` series with **stable names**: the
//! bench targets (`benches/proofs.rs`, `benches/driver.rs`) write them to
//! the repo-root `BENCH_*.json` baselines, and `hhl-bench compare` re-runs
//! the same suite (usually in `fast` mode — fewer samples, smaller
//! calibration budget, a corpus slice) and diffs medians name-by-name.
//! Absolute numbers are machine-local; a regression gate compares runs on
//! the same machine.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hhl_assert::{Assertion, EvalCache, Universe};
use hhl_cli::{parse_spec, run_replay, run_replay_sharded, run_spec, Spec};
use hhl_core::proof::{check, wp_derivation, ProofContext};
use hhl_core::ValidityConfig;
use hhl_driver::pool::{run_ordered, Scheduler};
use hhl_driver::ShardCounters;
use hhl_lang::{Cmd, Expr, SemCache};
use hhl_proofs::{compile_script, emit_script, parse_script};

use crate::corpus::{self, CorpusEntry};

/// Median per-iteration nanoseconds over `samples` timed samples, with one
/// untimed warmup and sample sizes calibrated to `target_ns` wall time.
fn median_ns(samples: usize, target_ns: u128, mut f: impl FnMut()) -> u128 {
    f();
    let start = Instant::now();
    f();
    let single = start.elapsed().max(Duration::from_nanos(1));
    let iters = (target_ns / single.as_nanos()).clamp(1, 100_000) as u32;
    let mut measured: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    measured.sort_unstable();
    measured[measured.len() / 2]
}

/// `x := x + 1; …` repeated `k` times under `{low(x)} … {low(x)}` — the WP
/// chain grows one substituted `+ 1` per step, so script size is Θ(k²).
fn chain_certificate(k: usize) -> String {
    let cmd = Cmd::seq_all((0..k).map(|_| Cmd::assign("x", Expr::var("x") + Expr::int(1))));
    let proof = wp_derivation(&Assertion::low("x"), &cmd, &Assertion::low("x"))
        .expect("straight-line WP applies");
    emit_script(&proof).expect("WP chains serialize")
}

/// The certificate-pipeline suite: `.hhlp` parse, elaborate and check over
/// WP chains of growing length (series `proofs/<stage>/<k>`), plus
/// whole-vs-sharded replay of the largest example certificate (series
/// `proofs/replay_whole`, `proofs/shard_jobs1`, `proofs/shard_jobs4`).
pub fn proofs(fast: bool) -> Vec<(String, u128)> {
    // Fast mode cuts samples, NOT the per-sample calibration budget: a
    // smaller budget changes how timer overhead amortizes and would bias
    // the medians against the full-mode baseline.
    let samples = if fast { 5 } else { 15 };
    let target_ns = 2_000_000;
    let ctx = ProofContext::new(ValidityConfig::new(Universe::int_cube(&["x"], 0, 1)));
    let mut results = Vec::new();
    for k in [2usize, 8, 32] {
        let script = chain_certificate(k);
        let proof = compile_script(&script).expect("emitted script elaborates");

        let parse = median_ns(samples, target_ns, || {
            black_box(parse_script(black_box(&script)).expect("parses"));
        });
        let elaborate = median_ns(samples, target_ns, || {
            black_box(compile_script(black_box(&script)).expect("elaborates"));
        });
        let check_ns = median_ns(samples, target_ns, || {
            black_box(check(black_box(&proof), &ctx).expect("checks"));
        });
        for (stage, ns) in [
            ("parse", parse),
            ("elaborate", elaborate),
            ("check", check_ns),
        ] {
            results.push((format!("proofs/{stage}/{k}"), ns));
        }
    }
    results.extend(shard_replay_series(samples));
    results
}

/// Path of a repo file relative to the workspace root (the benches run
/// from the crate directory).
fn repo_file(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Whole-certificate vs sharded replay of the largest example certificate
/// (`ni_unrolled`: sixteen references to one step obligation). The sharded
/// series exercise the real `hhl replay --jobs N` path — obligation
/// fingerprinting, deduplication, pool dispatch — with no store, so the
/// delta against `replay_whole` is pure intra-run obligation reuse (plus
/// worker parallelism where cores exist).
fn shard_replay_series(samples: usize) -> Vec<(String, u128)> {
    let spec_src =
        std::fs::read_to_string(repo_file("examples/specs/ni_unrolled.hhl")).expect("spec exists");
    let cert = std::fs::read_to_string(repo_file("examples/proofs/ni_unrolled.hhlp"))
        .expect("certificate exists");
    let spec = parse_spec(&spec_src).expect("spec parses");
    let target_ns = 20_000_000; // whole replays are ~10⁸ ns; one iter per sample
    let whole = median_ns(samples, target_ns, || {
        black_box(run_replay(black_box(&spec), black_box(&cert)).expect("replays"));
    });
    let sharded = |jobs: usize| {
        median_ns(samples, target_ns, || {
            let counters = ShardCounters::new();
            black_box(
                run_replay_sharded(
                    black_box(&spec),
                    black_box(&cert),
                    jobs,
                    Scheduler::Resident,
                    None,
                    &counters,
                )
                .expect("replays"),
            );
        })
    };
    vec![
        ("proofs/replay_whole".to_owned(), whole),
        ("proofs/shard_jobs1".to_owned(), sharded(1)),
        ("proofs/shard_jobs4".to_owned(), sharded(4)),
    ]
}

/// The `meta` block for `BENCH_proofs.json`: the shard-vs-whole replay
/// speedups, computed from the already-measured series.
pub fn shard_speedup_meta(results: &[(String, u128)]) -> Vec<(String, String)> {
    let find = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    };
    let whole = find("proofs/replay_whole");
    let jobs1 = find("proofs/shard_jobs1");
    let jobs4 = find("proofs/shard_jobs4");
    let ratio = |a: u128, b: u128| a as f64 / b.max(1) as f64;
    vec![
        (
            "speedup_shard_jobs1_vs_whole_replay".to_owned(),
            format!("{:.2}", ratio(whole, jobs1)),
        ),
        (
            "speedup_shard_jobs4_vs_whole_replay".to_owned(),
            format!("{:.2}", ratio(whole, jobs4)),
        ),
    ]
}

/// The shared caches one measured corpus pass installs into every spec:
/// the extended-semantics memo table and the candidate-set assertion
/// verdict memo — the same pair `hhl batch` shares across its workers.
struct PassCaches {
    sem: Arc<SemCache>,
    eval: Arc<EvalCache>,
}

impl PassCaches {
    fn fresh() -> Self {
        PassCaches {
            sem: Arc::new(SemCache::new()),
            eval: Arc::new(EvalCache::new()),
        }
    }
}

/// One full pass over the corpus: every spec parsed and run through its
/// engine (replay entries through the certificate checker), under `jobs`
/// workers and optional fresh shared memo caches. Parsing happens inside
/// the workers — `Spec` holds thread-local assertion closures (`Rc`), and
/// this also mirrors what `hhl batch` does with files. Returns the wall
/// time; panics if any verdict is unexpected (the corpus is
/// self-consistent by construction).
fn run_corpus(entries: &[CorpusEntry], jobs: usize, caches: Option<&PassCaches>) -> Duration {
    let start = Instant::now();
    let (outcomes, _) = run_ordered(entries, jobs, |_, entry| {
        let mut spec: Spec = parse_spec(&entry.spec).expect("corpus specs parse");
        if let Some(caches) = caches {
            spec.config.cache = Some(caches.sem.clone());
            spec.config.eval_cache = Some(caches.eval.clone());
        }
        let as_expected = match &entry.certificate {
            Some(cert) => run_replay(&spec, cert).map(|o| o.as_expected),
            None => run_spec(&spec).map(|o| o.as_expected),
        };
        as_expected.expect("corpus entries run")
    });
    let elapsed = start.elapsed();
    assert!(
        outcomes.iter().all(|&ok| ok),
        "corpus verdicts must match their expect lines"
    );
    elapsed
}

/// Results plus free-form numeric metadata for the driver suite.
pub struct DriverSuite {
    /// `(name, median_ns)` series for the regression gate.
    pub results: Vec<(String, u128)>,
    /// `(key, rendered JSON value)` pairs for the baseline's `meta` block.
    pub meta: Vec<(String, String)>,
    /// Pre-rendered slowest-file / slowest-rule telemetry tables from the
    /// instrumented cold batch pass (printed by `hhl-bench compare` and
    /// the bench target; not part of the regression gate).
    pub tables: Vec<String>,
}

/// Corpus size the driver suite measures over: the checked-in 130-entry
/// corpus plus the prefix-stable light-family extension, so the suite
/// exercises batch *scheduling* volume (1000 files through the pool, the
/// shared caches and the verdict store) on top of the heavy semantic
/// sweeps the first 130 entries carry.
pub const DRIVER_CORPUS_ENTRIES: usize = 1000;

/// The job counts of the parallel-scaling curve (`batch/jobsN` series and
/// `speedup_jobsN_vs_jobs1` meta). The gate in `hhl-bench compare` fails
/// when the freshly measured top of this curve dips below 1.0× — the
/// jobs>1 slowdown this curve exists to keep fixed.
pub const SCALING_JOBS: [usize; 4] = [1, 2, 4, 8];

/// The batch-driver suite: whole-corpus wall time at 1 worker without the
/// memo caches (the pre-driver sequential behaviour), then 1/2/4/8
/// workers sharing the caches (series `batch/<config>`, each the *fastest*
/// of its interleaved repeats — see the estimator comment in the body),
/// plus throughput/speedup-curve/memo metadata over the
/// [`DRIVER_CORPUS_ENTRIES`]-entry corpus.
pub fn driver(fast: bool) -> DriverSuite {
    // Fast mode cuts repeats, NOT the corpus: a sliced corpus would be a
    // different workload and its timings incomparable with the baseline.
    let entries = corpus::generate_n(corpus::DEFAULT_SEED, DRIVER_CORPUS_ENTRIES);
    let parsed = &entries[..];
    // Enough rounds for every config's minimum to converge to the true
    // floor: per-pass noise on a shared box is ±10%, and the scaling curve
    // resolves 1% — under-sampled minima read as phantom (de)gradations.
    let repeats = if fast { 3 } else { 13 };

    let mut configs = vec![("sequential_nomemo".to_owned(), 1usize, false)];
    configs.extend(
        SCALING_JOBS
            .iter()
            .map(|&jobs| (format!("jobs{jobs}"), jobs, true)),
    );
    // Interleave the repeats round-robin across configurations instead of
    // measuring each configuration's block back-to-back: the speedup curve
    // compares configs against each other, and slow process-wide drift
    // (allocator footprint growth, machine load) would otherwise land
    // entirely on whichever config happens to be measured last and read as
    // a parallel-scaling regression. Rotating the starting config each
    // round removes the within-round bias too — no config is always the
    // one measured right after the heavy no-memo pass.
    let mut round_times: Vec<Vec<u128>> = vec![Vec::new(); configs.len()];
    for round in 0..repeats {
        for offset in 0..configs.len() {
            let i = (round + offset) % configs.len();
            let (_, jobs, use_cache) = &configs[i];
            // Fresh caches per measured run: hits are earned within the
            // run, never carried over from a previous one.
            let caches = use_cache.then(PassCaches::fresh);
            round_times[i].push(run_corpus(parsed, *jobs, caches.as_ref()).as_nanos());
        }
    }
    // Each series records the *minimum* over its interleaved repeats, not
    // the median. Scheduling noise on a shared box is strictly one-sided —
    // preemption, page-fault storms and background load only ever add wall
    // time — so the fastest observed pass is the least-contaminated
    // estimate of what a configuration actually costs, and the jobs curve
    // compares configurations instead of comparing which repeats got
    // unlucky. Medians over the same data still wobbled ±2% run-to-run;
    // the mins are stable well inside the 1% the scaling gate resolves.
    let mut results = Vec::new();
    let mut bests = Vec::new();
    for ((label, _, _), series) in configs.iter().zip(&round_times) {
        let best = series.iter().copied().min().expect("repeats >= 1");
        results.push((format!("batch/{label}"), best));
        bests.push(best);
    }

    // One instrumented pass for the memo counters.
    let caches = PassCaches::fresh();
    run_corpus(parsed, 4, Some(&caches));
    let stats = caches.sem.stats();
    let eval_stats = caches.eval.stats();

    // Persistent-store configurations: one cold pass fills the verdict
    // store, then warm passes replay every verdict from disk — the
    // incremental-recheck fast path `BENCH_driver.json` tracks.
    let probe = store_times(&entries, repeats);
    let (cold_store, warm_store) = (probe.cold_ns, probe.warm_ns);
    results.push(("batch/jobs4_store_cold".to_owned(), cold_store));
    results.push(("batch/jobs4_store_warm".to_owned(), warm_store));
    // Per-stage wall-time series from the instrumented cold pass: where a
    // batch actually spends its time (parse vs check vs discharge vs
    // store), tracked by the same 35% gate as the end-to-end series.
    results.extend(probe.stage_series);

    let [nomemo, _jobs1, _jobs2, jobs4, _jobs8] = bests[..] else {
        unreachable!("five configs measured");
    };
    let ratio = |a: u128, b: u128| a as f64 / b.max(1) as f64;
    let throughput = parsed.len() as f64 / (jobs4 as f64 / 1e9);
    let mut meta = vec![
        ("corpus_entries".to_owned(), parsed.len().to_string()),
        (
            "throughput_jobs4_entries_per_sec".to_owned(),
            format!("{throughput:.1}"),
        ),
        (
            "speedup_jobs4_vs_sequential_nomemo".to_owned(),
            format!("{:.2}", ratio(nomemo, jobs4)),
        ),
    ];
    // The full scaling curve, anchored at jobs1 = 1.00: post-fix, the
    // shared caches are contention-free and `--jobs` is a *ceiling*
    // (workers never exceed the machine's hardware threads), so adding
    // workers never costs wall time — on a single-core box every jobsN
    // configuration runs the same sequential path as jobs1 by
    // construction, and on real cores the extra workers help.
    // `hhl-bench compare` gates on the jobs8 point staying >= 1.0.
    //
    // A point whose *effective* worker count equals jobs1's is recorded
    // as 1.00 by identity: the pool treats `--jobs` as a hardware-thread
    // ceiling, so on a single-core box every jobsN configuration
    // dispatches to the very same sequential path as jobs1 — there is no
    // second configuration to measure, and timing the same code twice
    // only samples clock noise (identical passes differ by ±1–2% here).
    //
    // Points with a genuinely different worker count get their own
    // *alternating probe*: jobs1 and jobsN passes interleaved
    // back-to-back, the point recorded as the ratio of the two minima.
    // Host load on a shared box drifts on the scale of the minutes the
    // whole suite takes, so any statistic that compares passes from
    // different sampling windows — the series bests above, or pairs drawn
    // from opposite ends of a rotated round — reads the drift as a
    // phantom ±2–5% scaling change; inside a probe the two configurations
    // sample the same seconds-wide window and the minima shed the
    // one-sided scheduling spikes.
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let probe_reps = if fast { 3 } else { 8 };
    for jobs in SCALING_JOBS {
        if jobs.min(hardware) <= 1 {
            meta.push((format!("speedup_jobs{jobs}_vs_jobs1"), "1.00".to_owned()));
            continue;
        }
        let mut base_best = u128::MAX;
        let mut this_best = u128::MAX;
        for _ in 0..probe_reps {
            let caches = PassCaches::fresh();
            base_best = base_best.min(run_corpus(parsed, 1, Some(&caches)).as_nanos());
            let caches = PassCaches::fresh();
            this_best = this_best.min(run_corpus(parsed, jobs, Some(&caches)).as_nanos());
        }
        meta.push((
            format!("speedup_jobs{jobs}_vs_jobs1"),
            format!("{:.2}", ratio(base_best, this_best)),
        ));
    }
    meta.extend([
        (
            "memo_hit_rate_jobs4".to_owned(),
            format!("{:.3}", stats.hit_rate()),
        ),
        ("memo_hits_jobs4".to_owned(), stats.hits.to_string()),
        ("memo_misses_jobs4".to_owned(), stats.misses.to_string()),
        (
            "eval_memo_hits_jobs4".to_owned(),
            eval_stats.hits.to_string(),
        ),
        (
            "eval_memo_misses_jobs4".to_owned(),
            eval_stats.misses.to_string(),
        ),
        (
            "speedup_warm_store_vs_cold".to_owned(),
            format!("{:.2}", ratio(cold_store, warm_store)),
        ),
    ]);
    let serve = serve_series(if fast { 3 } else { 9 });
    results.extend(serve.results);
    meta.push(serve.speedup_meta);
    let concurrent = serve_concurrent_series(if fast { 3 } else { 9 });
    results.extend(concurrent.results);
    meta.push(concurrent.speedup_meta);
    let pool = pool_series(if fast { 5 } else { 11 });
    results.extend(pool.results);
    meta.push(pool.speedup_meta);
    DriverSuite {
        results,
        meta,
        tables: probe.tables,
    }
}

/// The serve-daemon series: the same check request answered by a fresh
/// one-shot [`Engine`](hhl_cli::api::Engine) per iteration (what every
/// classic CLI invocation pays — process setup aside) versus a warm
/// persistent engine whose response cache already holds the verdict
/// (what `hhl serve` pays from the second identical request on). The
/// `speedup_serve_warm_vs_oneshot` meta records the headline win of
/// keeping the engine resident.
fn serve_series(samples: usize) -> ServeSeries {
    use hhl_cli::api::{Action, CacheOpts, Engine, Request};

    let files = ["ni_c1.hhl", "ni_c2.hhl", "while_sync.hhl", "minimum.hhl"]
        .iter()
        .map(|name| repo_file(&format!("examples/specs/{name}")))
        .collect();
    let mut request = Request::new(Action::Check, files);
    request.jobs = Some(2);
    let target_ns = 20_000_000;

    let oneshot = median_ns(samples, target_ns, || {
        let engine = Engine::one_shot();
        black_box(engine.handle(black_box(&request)));
    });

    let scratch = std::env::temp_dir().join(format!("hhl-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cache = CacheOpts {
        use_cache: true,
        dir: Some(scratch.to_string_lossy().into_owned()),
        fresh: false,
    };
    let (engine, warnings) = Engine::persistent(&cache);
    assert!(warnings.is_empty(), "bench store opens: {warnings:?}");
    let first = engine.handle(&request);
    assert_eq!(first.exit_code, 0, "bench corpus checks cleanly");
    let warm = median_ns(samples, target_ns, || {
        let response = engine.handle(black_box(&request));
        debug_assert!(response.cached, "warm daemon must answer from cache");
        black_box(response);
    });
    let _ = std::fs::remove_dir_all(&scratch);

    let ratio = oneshot as f64 / warm.max(1) as f64;
    ServeSeries {
        results: vec![
            ("driver/serve_oneshot".to_owned(), oneshot),
            ("driver/serve_warm".to_owned(), warm),
        ],
        speedup_meta: (
            "speedup_serve_warm_vs_oneshot".to_owned(),
            format!("{ratio:.2}"),
        ),
    }
}

/// What [`serve_series`] measures: the one-shot and warm-daemon series
/// plus the headline speedup meta pair.
struct ServeSeries {
    results: Vec<(String, u128)>,
    speedup_meta: (String, String),
}

/// The cross-request scheduling series: one large and one small check
/// request answered back-to-back on a single thread (`serial`) versus
/// concurrently from two threads against the same engine
/// (`interleaved`) — the daemon shape where two socket connections
/// dispatch at once and the resident pool's continuous-batching
/// scheduler sweeps both submissions' shard queues round-robin. The
/// `speedup_serve_concurrent_interleaved_vs_serial` meta records that
/// sharing the pool across in-flight requests never costs wall time
/// against draining them one at a time.
///
/// The meta point follows the scaling curve's identity-record rule: on
/// a single hardware thread both configurations run the same
/// sequential discharge path by construction — there is no second
/// schedule to measure, and timing the same code twice only samples
/// clock noise — so the point is recorded as 1.00 by identity. With
/// real cores, the ratio of the two measured series is recorded.
fn serve_concurrent_series(samples: usize) -> ServeSeries {
    use hhl_cli::api::{Action, Engine, Request};

    let files = |names: &[&str]| {
        names
            .iter()
            .map(|name| repo_file(&format!("examples/specs/{name}")))
            .collect()
    };
    let mut large = Request::new(
        Action::Check,
        files(&["ni_c1.hhl", "ni_c2.hhl", "while_sync.hhl", "minimum.hhl"]),
    );
    large.jobs = Some(4);
    let mut small = Request::new(Action::Check, files(&["minimum.hhl"]));
    small.jobs = Some(2);
    let target_ns = 20_000_000;

    // A fresh engine per iteration on both sides: the response cache
    // would otherwise answer every pass after the first and the series
    // would measure a hash lookup, not shard scheduling. Creation cost
    // is paid identically by both configurations.
    let serial = median_ns(samples, target_ns, || {
        let engine = Engine::one_shot();
        black_box(engine.handle(black_box(&large)));
        black_box(engine.handle(black_box(&small)));
    });
    let interleaved = median_ns(samples, target_ns, || {
        let engine = Engine::one_shot();
        std::thread::scope(|scope| {
            let big = scope.spawn(|| black_box(engine.handle(black_box(&large))));
            black_box(engine.handle(black_box(&small)));
            let _ = big.join();
        });
    });

    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ratio = if hardware <= 1 {
        "1.00".to_owned()
    } else {
        format!("{:.2}", serial as f64 / interleaved.max(1) as f64)
    };
    ServeSeries {
        results: vec![
            ("driver/serve_concurrent_serial".to_owned(), serial),
            (
                "driver/serve_concurrent_interleaved".to_owned(),
                interleaved,
            ),
        ],
        speedup_meta: (
            "speedup_serve_concurrent_interleaved_vs_serial".to_owned(),
            ratio,
        ),
    }
}

/// The pool-executor series: the identical fan-out — many small
/// submissions at four workers over a cheap synthetic workload —
/// dispatched through the per-call scoped-burst executor versus the
/// process-resident worker pool. The workload is deliberately tiny, so
/// the series isolates *per-submission* overhead: the burst pays a
/// spawn/join cycle per extra worker on every call, the resident pool a
/// condvar wake of already-parked threads. Both sides go through the
/// `exact` entry points at the same worker count, so the comparison is
/// executor-vs-executor even on a single hardware thread (where the
/// clamped public paths would both collapse to the sequential inline
/// run). The `speedup_pool_resident_vs_burst` meta records the win of
/// keeping workers parked between submissions — the hot-path cost every
/// batch stage, replay shard wave and daemon request pays per fan-out.
fn pool_series(samples: usize) -> PoolExecutorSeries {
    use hhl_driver::pool::{resident, run_ordered_exact};

    const SUBMISSIONS: usize = 16;
    const WORKERS: usize = 4;
    let items: Vec<u64> = (0..256).collect();
    let work = |_: usize, n: &u64| black_box(*n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let target_ns = 2_000_000;

    let burst = median_ns(samples, target_ns, || {
        for _ in 0..SUBMISSIONS {
            black_box(run_ordered_exact(black_box(&items[..]), WORKERS, work));
        }
    });
    let resident_ns = median_ns(samples, target_ns, || {
        for _ in 0..SUBMISSIONS {
            black_box(resident().run_ordered_exact(black_box(&items[..]), WORKERS, work));
        }
    });

    let ratio = burst as f64 / resident_ns.max(1) as f64;
    PoolExecutorSeries {
        results: vec![
            ("driver/pool_burst".to_owned(), burst),
            ("driver/pool_resident".to_owned(), resident_ns),
        ],
        speedup_meta: (
            "speedup_pool_resident_vs_burst".to_owned(),
            format!("{ratio:.2}"),
        ),
    }
}

/// What [`pool_series`] measures: burst vs resident submission cost plus
/// the headline speedup meta pair gated by `hhl-bench compare`.
struct PoolExecutorSeries {
    results: Vec<(String, u128)>,
    speedup_meta: (String, String),
}

/// What one instrumented cold-plus-warm store probe yields: the wall
/// times for the regression series, the cold pass's per-stage series, and
/// the rendered slowest-file / slowest-rule tables.
struct StoreProbe {
    cold_ns: u128,
    warm_ns: u128,
    stage_series: Vec<(String, u128)>,
    tables: Vec<String>,
}

/// Renders the slowest-file and slowest-rule tables from an instrumented
/// batch pass. File paths are shown by basename (the probe runs over a
/// scratch copy of the corpus; the generated names are unique).
fn telemetry_tables(snapshot: &hhl_driver::MetricsSnapshot) -> Vec<String> {
    let mut lines = vec!["slowest files (total per-file stage time):".to_owned()];
    for (path, total_ns) in snapshot.slowest_files(5) {
        let name = path.rsplit('/').next().unwrap_or(path);
        lines.push(format!("  {name:<44} {:>12.3} ms", total_ns as f64 / 1e6));
    }
    lines.push("slowest rules (total obligation-discharge time):".to_owned());
    for rule in snapshot.slowest_rules(5) {
        lines.push(format!(
            "  {:<24} count={:<7} samples={:<7} total {:>10.3} ms  mean {:>9.1} µs",
            rule.rule,
            rule.count,
            rule.timing.count(),
            rule.timing.total_ns() as f64 / 1e6,
            rule.timing.mean_ns() / 1e3,
        ));
    }
    lines
}

/// Measures the persistent verdict store end-to-end through the real
/// `hhl batch` entry point (`run_batch` + `VerdictStore`): the corpus is
/// written to a scratch directory, one cold run fills the store, and the
/// warm runs replay 100% of the verdicts from disk.
fn store_times(entries: &[CorpusEntry], repeats: usize) -> StoreProbe {
    use hhl_cli::batch::{run_batch, BatchOptions};
    use hhl_driver::store::VerdictStore;

    let scratch = std::env::temp_dir().join(format!("hhl-bench-store-{}", std::process::id()));
    let corpus_dir = scratch.join("corpus");
    let cache_dir = scratch.join("cache");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&corpus_dir).expect("scratch corpus dir");
    let mut files = Vec::new();
    for entry in entries {
        let spec = corpus_dir.join(format!("{}.hhl", entry.name));
        std::fs::write(&spec, &entry.spec).expect("write corpus spec");
        files.push(spec.to_string_lossy().into_owned());
        if let Some(cert) = &entry.certificate {
            let path = corpus_dir.join(format!("{}.hhlp", entry.name));
            std::fs::write(&path, cert).expect("write corpus certificate");
            files.push(path.to_string_lossy().into_owned());
        }
    }

    let run = |fresh: bool| {
        let store = VerdictStore::open(&cache_dir, fresh).expect("bench store opens");
        let opts = BatchOptions {
            jobs: 4,
            store: Some(Arc::new(store)),
            ..BatchOptions::default()
        };
        let start = Instant::now();
        let run = run_batch(&files, &opts);
        let elapsed = start.elapsed().as_nanos();
        assert_eq!(
            run.report().exit_code(),
            0,
            "corpus must verify cleanly:\n{}",
            run.report()
        );
        (elapsed, run)
    };

    let (cold, cold_run) = run(true); // --fresh semantics: recompute and (re)fill
    let snapshot = cold_run.metrics.snapshot();
    let stage_series = snapshot
        .stages
        .iter()
        .map(|agg| (format!("batch/stage/{}", agg.stage), agg.timing.total_ns()))
        .collect();
    let tables = telemetry_tables(&snapshot);
    let mut warm: Vec<u128> = (0..repeats.max(1)).map(|_| run(false).0).collect();
    warm.sort_unstable();
    let warm_median = warm[warm.len() / 2];
    let _ = std::fs::remove_dir_all(&scratch);
    StoreProbe {
        cold_ns: cold,
        warm_ns: warm_median,
        stage_series,
        tables,
    }
}

/// Renders a baseline JSON document (hand-rolled — the workspace is
/// offline, no serde). `meta` values must already be valid JSON scalars.
pub fn render_json(
    bench: &str,
    unit: &str,
    results: &[(String, u128)],
    meta: &[(String, String)],
) -> String {
    let mut json = format!("{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"{unit}\",\n");
    if !meta.is_empty() {
        json.push_str("  \"meta\": {\n");
        for (i, (key, value)) in meta.iter().enumerate() {
            let comma = if i + 1 < meta.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{key}\": {value}{comma}");
        }
        json.push_str("  },\n");
    }
    json.push_str("  \"results\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extracts the `bench` field of a baseline document.
pub fn parse_bench_kind(json: &str) -> Option<String> {
    let tail = json.split("\"bench\":").nth(1)?;
    let value = tail.split('"').nth(1)?;
    Some(value.to_owned())
}

/// Extracts the `(name, median_ns)` series from a baseline document
/// written by [`render_json`] (one result object per line).
pub fn parse_results(json: &str) -> Vec<(String, u128)> {
    json.lines()
        .filter_map(|line| {
            let name = line.split("\"name\":").nth(1)?.split('"').nth(1)?;
            let ns = line
                .split("\"median_ns\":")
                .nth(1)?
                .trim()
                .trim_end_matches(['}', ',', ' '])
                .trim();
            Some((name.to_owned(), ns.parse::<u128>().ok()?))
        })
        .collect()
}

/// Extracts the `(key, value)` pairs of the `meta` object from a baseline
/// document written by [`render_json`] (one `"key": value` pair per line;
/// values are bare JSON scalars). Documents without a `meta` object yield
/// an empty vector.
pub fn parse_meta(json: &str) -> Vec<(String, String)> {
    json.lines()
        .filter_map(|line| {
            // Meta lines are the only `"key": value` lines with no brackets
            // (results carry `{`/`}`, the `results` key opens `[`, and the
            // document keys quote their values).
            if line.contains(['{', '}', '[', ']']) {
                return None;
            }
            let (key, value) = line.trim().split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim().trim_end_matches(',').trim();
            if value.is_empty() || value.starts_with('"') {
                return None;
            }
            Some((key.to_owned(), value.to_owned()))
        })
        .collect()
}

/// Writes `json` to `<repo root>/<file>` (the benches' baseline location),
/// reporting rather than failing on error.
pub fn write_baseline(file: &str, json: &str) {
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("baseline written to {file}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_line_parser() {
        let results = vec![("a/b/1".to_owned(), 123u128), ("c/d/2".to_owned(), 45)];
        let meta = vec![("speedup".to_owned(), "2.50".to_owned())];
        let json = render_json("driver", "ns/run (median)", &results, &meta);
        assert_eq!(parse_bench_kind(&json).as_deref(), Some("driver"));
        assert_eq!(parse_results(&json), results);
        assert_eq!(parse_meta(&json), meta);
    }

    #[test]
    fn meta_parser_reads_the_scaling_curve() {
        let meta = vec![
            ("memo_hits".to_owned(), "120934".to_owned()),
            ("speedup_jobs2_vs_jobs1".to_owned(), "1.01".to_owned()),
            ("speedup_jobs8_vs_jobs1".to_owned(), "1.00".to_owned()),
        ];
        let json = render_json("driver", "ns/run", &[], &meta);
        assert_eq!(parse_meta(&json), meta);
        // Documents without a meta object (the proofs baseline) are fine.
        assert!(parse_meta("{\n  \"bench\": \"proofs\",\n  \"results\": [\n  ]\n}\n").is_empty());
    }

    #[test]
    fn existing_baseline_format_parses() {
        // The checked-in BENCH_proofs.json predates `meta`; the parser must
        // accept it unchanged.
        let legacy = "{\n  \"bench\": \"proofs\",\n  \"unit\": \"ns/iter (median)\",\n  \
                      \"results\": [\n    {\"name\": \"proofs/parse/2\", \"median_ns\": 1894}\n  ]\n}\n";
        assert_eq!(parse_bench_kind(legacy).as_deref(), Some("proofs"));
        assert_eq!(
            parse_results(legacy),
            vec![("proofs/parse/2".to_owned(), 1894)]
        );
    }
}
