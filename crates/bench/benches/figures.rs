//! Benches regenerating the cost profile of every paper figure
//! (the experiment index of DESIGN.md). Absolute times are machine-local;
//! the *shape* — which checks dominate, how costs scale with the workload
//! parameter — is the reproducible series.

use hhl_bench::harness::{BenchmarkId, Harness};

use hhl_assert::{assign_transform, havoc_transform, Assertion, EvalConfig};
use hhl_bench::{assignment_chain, fig10_qif, fig4_proof, fig7_fib, fig8_minimum};
use hhl_core::check_triple;
use hhl_core::proof::check;
use hhl_lang::{Cmd, ExecConfig, Expr, ExtState, StateSet, Store, Symbol, Value};
use hhl_logics::render_matrix;

fn bench_fig01_matrix(c: &mut Harness) {
    c.bench_function("fig01/render_matrix", |b| b.iter(render_matrix));
}

fn bench_fig03_transformations(c: &mut Harness) {
    let mut g = c.benchmark_group("fig03_syntactic");
    for depth in [1usize, 2, 4, 8] {
        // Nested ∀⟨φ⟩/∃⟨φ⟩ alternation of the given depth over x.
        let mut a =
            Assertion::Atom(hhl_assert::HExpr::pvar("p0", "x").le(hhl_assert::HExpr::int(0)));
        for i in 0..depth {
            let name = format!("p{i}");
            a = if i % 2 == 0 {
                Assertion::forall_state(name.as_str(), a)
            } else {
                Assertion::exists_state(name.as_str(), a)
            };
        }
        g.bench_with_input(BenchmarkId::new("assign_transform", depth), &a, |b, a| {
            b.iter(|| {
                assign_transform(Symbol::new("x"), &(Expr::var("y") + Expr::var("z")), a)
                    .expect("𝒜 applies")
            })
        });
        g.bench_with_input(BenchmarkId::new("havoc_transform", depth), &a, |b, a| {
            b.iter(|| havoc_transform(Symbol::new("x"), a).expect("ℋ applies"))
        });
    }
    g.finish();
}

fn bench_fig04_proof_check(c: &mut Harness) {
    let (proof, ctx) = fig4_proof();
    c.bench_function("fig04/check_gni_violation_proof", |b| {
        b.iter(|| check(&proof, &ctx).expect("Fig. 4 proof checks"))
    });
}

fn bench_fig09_sem_scaling(c: &mut Harness) {
    let mut g = c.benchmark_group("fig09_semantics");
    let cmd = Cmd::seq(
        Cmd::rand_int_bounded("y", Expr::int(0), Expr::int(3)),
        Cmd::assign("x", Expr::var("x") + Expr::var("y")),
    );
    let exec = ExecConfig::int_range(0, 3);
    for n in [1usize, 4, 16, 64] {
        let s: StateSet = (0..n as i64)
            .map(|i| ExtState::from_program(Store::from_pairs([("x", Value::Int(i))])))
            .collect();
        g.bench_with_input(BenchmarkId::new("sem_vs_set_size", n), &s, |b, s| {
            b.iter(|| exec.sem(&cmd, s))
        });
    }
    for n in [2usize, 8, 32] {
        let chain = assignment_chain(n);
        let s = StateSet::singleton(ExtState::default());
        g.bench_with_input(
            BenchmarkId::new("sem_vs_cmd_size", n),
            &chain,
            |b, chain| b.iter(|| exec.sem(chain, &s)),
        );
    }
    g.finish();
}

fn bench_fig06_otp_eval(c: &mut Harness) {
    // GNI assertion evaluation over the one-time-pad output sets.
    let gni = Assertion::gni("h", "l");
    let exec = ExecConfig::int_range(0, 3);
    let cmd = hhl_lang::parse_cmd("y := nonDet(); l := h ^ y").expect("parses");
    let init: StateSet = (0..=3)
        .map(|h| ExtState::from_program(Store::from_pairs([("h", Value::Int(h))])))
        .collect();
    let finals = exec.sem(&cmd, &init);
    let cfg = EvalConfig::int_range(0, 3);
    c.bench_function("fig06/gni_eval_on_otp_outputs", |b| {
        b.iter(|| hhl_assert::eval_assertion(&gni, &finals, &cfg))
    });
}

fn bench_fig07_fib(c: &mut Harness) {
    let mut g = c.benchmark_group("fig07_fibonacci");
    g.sample_size(10);
    for n in [1i64, 2, 3] {
        let (t, cfg) = fig7_fib(n);
        g.bench_with_input(BenchmarkId::new("mono_check", n), &t, |b, t| {
            b.iter(|| check_triple(t, &cfg).expect("monotonicity holds"))
        });
    }
    g.finish();
}

fn bench_fig08_minimum(c: &mut Harness) {
    let mut g = c.benchmark_group("fig08_minimum");
    g.sample_size(10);
    for k in [1i64, 2] {
        let (t, cfg) = fig8_minimum(k);
        g.bench_with_input(BenchmarkId::new("exists_forall_check", k), &t, |b, t| {
            b.iter(|| check_triple(t, &cfg).expect("minimality holds"))
        });
    }
    g.finish();
}

fn bench_fig10_qif(c: &mut Harness) {
    let mut g = c.benchmark_group("fig10_qif");
    g.sample_size(10);
    for v in [0i64, 1, 2] {
        let (t, cfg) = fig10_qif(v);
        g.bench_with_input(BenchmarkId::new("exact_output_count", v), &t, |b, t| {
            b.iter(|| check_triple(t, &cfg).expect("count holds"))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_fig01_matrix(&mut c);
    bench_fig03_transformations(&mut c);
    bench_fig04_proof_check(&mut c);
    bench_fig09_sem_scaling(&mut c);
    bench_fig06_otp_eval(&mut c);
    bench_fig07_fib(&mut c);
    bench_fig08_minimum(&mut c);
    bench_fig10_qif(&mut c);
}
