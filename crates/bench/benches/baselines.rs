//! Baseline comparison: the specialized App. C logics (HL, IL) versus the
//! general hyper-triple checker on the same judgments.
//!
//! The paper's Fig. 1 positions Hyper Hoare Logic as strictly more general;
//! the cost of that generality is what this bench quantifies. Expected
//! shape: the direct HL/IL checkers (linear in the state universe) win by a
//! constant-to-polynomial factor over the hyper-triple checker (which
//! quantifies over candidate *sets*); the gap widens with the universe —
//! that is the crossover the specialized logics exist for, while only the
//! hyper-triple side can express the §2.3/App. B properties at all.

use std::collections::BTreeSet;

use hhl_bench::harness::{BenchmarkId, Harness};

use hhl_assert::{EntailConfig, Universe};
use hhl_core::semantic::sem_valid;
use hhl_lang::{parse_cmd, ExecConfig, ExtState, Value};
use hhl_logics::{hl_as_hyper_triple, hl_valid, il_as_hyper_triple, il_valid};

fn hl_workload(hi: i64) -> (BTreeSet<ExtState>, BTreeSet<ExtState>, Universe) {
    let universe = Universe::int_cube(&["x"], 0, hi);
    let p: BTreeSet<ExtState> = universe
        .states
        .iter()
        .filter(|s| s.program.get("x").as_int() <= hi / 2)
        .cloned()
        .collect();
    let q: BTreeSet<ExtState> = Universe::int_cube(&["x"], 0, hi + 1)
        .states
        .into_iter()
        .filter(|s| s.program.get("x").as_int() >= 1)
        .collect();
    (p, q, universe)
}

fn bench_hl_direct_vs_hyper(c: &mut Harness) {
    let mut g = c.benchmark_group("baseline_hl");
    let cmd = parse_cmd("x := x + 1").expect("parses");
    for hi in [3i64, 7, 15] {
        let (p, q, universe) = hl_workload(hi);
        let exec = ExecConfig::int_range(0, hi + 1);
        g.bench_with_input(BenchmarkId::new("direct", hi), &hi, |b, _| {
            b.iter(|| assert!(hl_valid(&p, &cmd, &q, &exec)))
        });
        let triple = hl_as_hyper_triple(p.clone(), cmd.clone(), q.clone());
        let check = EntailConfig {
            max_subset_size: 3,
            ..EntailConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("hyper_triple", hi), &hi, |b, _| {
            b.iter(|| assert!(sem_valid(&triple, &universe, &exec, &check)))
        });
    }
    g.finish();
}

fn bench_il_direct_vs_hyper(c: &mut Harness) {
    let mut g = c.benchmark_group("baseline_il");
    let cmd = parse_cmd("x := nonDet()").expect("parses");
    for hi in [3i64, 7, 15] {
        let universe = Universe::int_cube(&["x"], 0, hi);
        let p: BTreeSet<ExtState> = universe.states.iter().take(1).cloned().collect();
        let q: BTreeSet<ExtState> = universe
            .states
            .iter()
            .filter(|s| s.program.get("x") != Value::Int(0))
            .cloned()
            .collect();
        let exec = ExecConfig::int_range(0, hi);
        g.bench_with_input(BenchmarkId::new("direct", hi), &hi, |b, _| {
            b.iter(|| assert!(il_valid(&p, &cmd, &q, &exec)))
        });
        let triple = il_as_hyper_triple(p.clone(), cmd.clone(), q.clone());
        let check = EntailConfig {
            max_subset_size: 3,
            ..EntailConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("hyper_triple", hi), &hi, |b, _| {
            b.iter(|| assert!(sem_valid(&triple, &universe, &exec, &check)))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_hl_direct_vs_hyper(&mut c);
    bench_il_direct_vs_hyper(&mut c);
}
