//! Batch-driver throughput over the seeded 130-entry corpus: whole-corpus
//! wall time for the pre-driver sequential configuration (1 worker, no
//! memo cache) against 1/2/4 workers sharing one extended-semantics memo
//! cache, plus cold-vs-warm persistent-store runs (the incremental
//! re-check fast path) and memo hit-rate / speedup / throughput metadata.
//!
//! The measurement lives in [`hhl_bench::suites::driver`], shared with the
//! `hhl-bench compare` regression gate. This bench writes the
//! `BENCH_driver.json` baseline at the repo root. On single-core machines
//! the `jobs4` win over `jobs1` is bounded by the hardware; the recorded
//! speedup against `sequential_nomemo` is the driver's end-to-end gain
//! (scheduling + shared memoization) over the seed behaviour.

use hhl_bench::suites;

fn main() {
    let suite = suites::driver(false);
    for (name, ns) in &suite.results {
        println!("bench {name:<44} median {ns:>12} ns/run");
    }
    for (key, value) in &suite.meta {
        println!("meta  {key:<44} {value}");
    }
    let json = suites::render_json("driver", "ns/run (median)", &suite.results, &suite.meta);
    suites::write_baseline("BENCH_driver.json", &json);
}
