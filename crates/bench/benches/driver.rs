//! Batch-driver throughput and parallel scaling over the seeded corpus,
//! grown to [`hhl_bench::suites::DRIVER_CORPUS_ENTRIES`] entries: whole-
//! corpus wall time for the pre-driver sequential configuration (1 worker,
//! no memo cache) against 1/2/4/8 workers sharing one extended-semantics
//! memo cache and one assertion-evaluation cache, plus cold-vs-warm
//! persistent-store runs (the incremental re-check fast path) and memo
//! hit-rate / speedup / throughput metadata. The recorded
//! `speedup_jobsN_vs_jobs1` curve for every N in
//! [`hhl_bench::suites::SCALING_JOBS`] is the parallel-scaling contract
//! the `hhl-bench compare` gate enforces (jobs8 must not fall below
//! jobs1).
//!
//! The measurement lives in [`hhl_bench::suites::driver`], shared with the
//! `hhl-bench compare` regression gate. This bench writes the
//! `BENCH_driver.json` baseline at the repo root. `--jobs` is a ceiling —
//! the pool never spawns more workers than the machine has hardware
//! threads — so on single-core machines every `jobsN` configuration runs
//! the same sequential path as `jobs1` and the curve certifies "extra
//! workers are free" (~1.0); only on real cores does it measure genuine
//! scaling. The recorded speedup against `sequential_nomemo` is the
//! driver's end-to-end gain (scheduling + shared memoization) over the
//! seed behaviour.

use hhl_bench::suites;

fn main() {
    // Cap malloc arenas before the resident pool spawns, exactly as the
    // `hhl` binary does; otherwise the burst-executor series would measure
    // allocator page re-faulting instead of per-submission scheduling cost
    // (see hhl_driver::tune_allocator).
    hhl_driver::tune_allocator();
    let suite = suites::driver(false);
    for (name, ns) in &suite.results {
        println!("bench {name:<44} best   {ns:>12} ns/run");
    }
    for (key, value) in &suite.meta {
        println!("meta  {key:<44} {value}");
    }
    for line in &suite.tables {
        println!("{line}");
    }
    let json = suites::render_json(
        "driver",
        "ns/run (min of interleaved repeats)",
        &suite.results,
        &suite.meta,
    );
    suites::write_baseline("BENCH_driver.json", &json);
}
