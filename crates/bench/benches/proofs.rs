//! Certificate-pipeline throughput: `.hhlp` parse, elaborate (parse +
//! resolve + embedded-assertion parsing) and proof-check, over WP chains of
//! growing length.
//!
//! The measurement itself lives in [`hhl_bench::suites::proofs`], shared
//! with the `hhl-bench compare` regression gate (which re-runs it in fast
//! mode). Beyond the console report, this bench writes `BENCH_proofs.json`
//! at the repo root — the machine-readable baseline `compare` diffs
//! against. Absolute numbers are machine-local; the series shape across
//! the chain lengths is the reproducible signal (parse and elaborate scale
//! with script size, check additionally with the entailment oracle).

use hhl_bench::suites;

fn main() {
    let results = suites::proofs(false);
    for (name, ns) in &results {
        println!("bench {name:<44} median {ns:>10} ns/iter");
    }
    let json = suites::render_json("proofs", "ns/iter (median)", &results, &[]);
    suites::write_baseline("BENCH_proofs.json", &json);
}
