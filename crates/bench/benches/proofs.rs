//! Certificate-pipeline throughput: `.hhlp` parse, elaborate (parse +
//! resolve + embedded-assertion parsing) and proof-check, over WP chains of
//! growing length, plus whole-vs-sharded replay of the largest example
//! certificate (the `proofs/shard_jobs4` series; its speedup over
//! `proofs/replay_whole` is recorded in the baseline's `meta` block).
//!
//! The measurement itself lives in [`hhl_bench::suites::proofs`], shared
//! with the `hhl-bench compare` regression gate (which re-runs it in fast
//! mode). Beyond the console report, this bench writes `BENCH_proofs.json`
//! at the repo root — the machine-readable baseline `compare` diffs
//! against. Absolute numbers are machine-local; the series shape across
//! the chain lengths is the reproducible signal (parse and elaborate scale
//! with script size, check additionally with the entailment oracle).

use hhl_bench::suites;

fn main() {
    let results = suites::proofs(false);
    for (name, ns) in &results {
        println!("bench {name:<44} median {ns:>10} ns/iter");
    }
    let meta = suites::shard_speedup_meta(&results);
    let json = suites::render_json("proofs", "ns/iter (median)", &results, &meta);
    suites::write_baseline("BENCH_proofs.json", &json);
}
