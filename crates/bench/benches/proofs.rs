//! Certificate-pipeline throughput: `.hhlp` parse, elaborate (parse +
//! resolve + embedded-assertion parsing) and proof-check, over WP chains of
//! growing length.
//!
//! Beyond the console report, this bench writes `BENCH_proofs.json` at the
//! repo root — a machine-readable baseline the CI/regression tooling can
//! diff. Absolute numbers are machine-local; the series shape across the
//! chain lengths is the reproducible signal (parse and elaborate scale
//! with script size, check additionally with the entailment oracle).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use hhl_assert::{Assertion, Universe};
use hhl_core::proof::{check, wp_derivation, ProofContext};
use hhl_core::ValidityConfig;
use hhl_lang::{Cmd, Expr};
use hhl_proofs::{compile_script, emit_script, parse_script};

const CHAIN_LENGTHS: [usize; 3] = [2, 8, 32];
const SAMPLES: usize = 15;

/// `x := x + 1; …` repeated `k` times under `{low(x)} … {low(x)}` — the WP
/// chain grows one substituted `+ 1` per step, so script size is Θ(k²).
fn chain_certificate(k: usize) -> String {
    let cmd = Cmd::seq_all((0..k).map(|_| Cmd::assign("x", Expr::var("x") + Expr::int(1))));
    let proof = wp_derivation(&Assertion::low("x"), &cmd, &Assertion::low("x"))
        .expect("straight-line WP applies");
    emit_script(&proof).expect("WP chains serialize")
}

fn ctx() -> ProofContext {
    ProofContext::new(ValidityConfig::new(Universe::int_cube(&["x"], 0, 1)))
}

/// Median per-iteration nanoseconds over `SAMPLES` timed samples, with one
/// untimed warmup and sample sizes calibrated to ~2ms.
fn median_ns(mut f: impl FnMut()) -> u128 {
    f();
    let start = Instant::now();
    f();
    let single = start.elapsed().max(std::time::Duration::from_nanos(1));
    let iters = (2_000_000 / single.as_nanos()).clamp(1, 100_000) as u32;
    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let ctx = ctx();
    let mut results: Vec<(String, u128)> = Vec::new();
    for k in CHAIN_LENGTHS {
        let script = chain_certificate(k);
        let proof = compile_script(&script).expect("emitted script elaborates");

        let parse = median_ns(|| {
            black_box(parse_script(black_box(&script)).expect("parses"));
        });
        let elaborate = median_ns(|| {
            black_box(compile_script(black_box(&script)).expect("elaborates"));
        });
        let check_ns = median_ns(|| {
            black_box(check(black_box(&proof), &ctx).expect("checks"));
        });

        for (stage, ns) in [
            ("parse", parse),
            ("elaborate", elaborate),
            ("check", check_ns),
        ] {
            let name = format!("proofs/{stage}/{k}");
            println!("bench {name:<44} median {ns:>10} ns/iter ({SAMPLES} samples)");
            results.push((name, ns));
        }
    }

    // Hand-rolled JSON (the workspace is offline: no serde).
    let mut json = String::from(
        "{\n  \"bench\": \"proofs\",\n  \"unit\": \"ns/iter (median)\",\n  \"results\": [\n",
    );
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_proofs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to BENCH_proofs.json"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
