//! Seeded concurrency stress for the extended-semantics memo table.
//!
//! The `SemCache` promises that memoization is invisible: under any
//! interleaving of racing inserts and lookups, `sem_memo` returns exactly
//! what an uncached `sem` evaluation returns. The unit tests pin this for
//! single keys; here a seeded workload races many threads over a shared
//! pool of (program, state set, finitization) triples — with overlapping
//! keys so threads genuinely contend on shards and on finitization-id
//! interning — and checks every result against the uncached oracle.
//!
//! The snapshot round-trip is exercised under the same racing layout: a
//! cache warmed concurrently must export a snapshot that a fresh cache
//! imports wholesale and re-exports byte-identically.

use hhl_lang::rng::Rng;
use hhl_lang::{parse_cmd, Cmd, ExecConfig, ExtState, SemCache, StateSet, Store, Value};

const SEED: u64 = 0x5eed_cafe;

const PROGRAMS: &[&str] = &[
    "x := x + 1",
    "x := x + 1; y := x",
    "if (x > 0) { y := 1 } else { y := 0 }",
    "while (x < 2) { x := x + 1 }",
    "x := nonDet(); y := x ^ y",
    "skip; x := y + 1",
    "{ x := x + 1 } + { y := y + 1 }",
];

fn random_set(rng: &mut Rng) -> StateSet {
    let n = rng.gen_range_inclusive(0, 3);
    (0..n)
        .map(|_| {
            ExtState::from_program(Store::from_pairs([
                ("x", Value::Int(rng.gen_i64_inclusive(-1, 2))),
                ("y", Value::Int(rng.gen_i64_inclusive(-1, 2))),
            ]))
        })
        .collect()
}

/// The shared workload: every thread evaluates the same triples in its own
/// seeded order, so every key is raced by every thread.
fn workload(seed: u64) -> Vec<(ExecConfig, Cmd, StateSet)> {
    let mut rng = Rng::seed_from_u64(seed);
    let execs = [
        ExecConfig::int_range(-1, 1).fuel(4),
        ExecConfig::int_range(0, 2).fuel(6),
    ];
    let mut triples = Vec::new();
    for _ in 0..40 {
        let exec = rng.choose(&execs).clone();
        let program: &str = rng.choose::<&str>(PROGRAMS);
        let cmd = parse_cmd(program).expect("stress programs parse");
        triples.push((exec, cmd, random_set(&mut rng)));
    }
    triples
}

#[test]
fn racing_memoized_evaluation_matches_uncached_sem() {
    let triples = workload(SEED);
    let expected: Vec<StateSet> = triples
        .iter()
        .map(|(exec, cmd, s)| exec.sem(cmd, s))
        .collect();

    let cache = SemCache::new();
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let triples = &triples;
            let expected = &expected;
            let cache = &cache;
            scope.spawn(move || {
                // Per-thread visiting order: every thread hits every key,
                // but no two threads in the same order — inserts race
                // lookups on the same shards throughout the run.
                let mut order: Vec<usize> = (0..triples.len()).collect();
                Rng::seed_from_u64(SEED ^ t).shuffle(&mut order);
                for round in 0..3 {
                    for &i in &order {
                        let (exec, cmd, s) = &triples[i];
                        assert_eq!(
                            &exec.sem_memo(cmd, s, cache),
                            &expected[i],
                            "thread {t} round {round} triple {i} diverged"
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(stats.hits > 0, "repeat rounds must hit: {stats:?}");
    assert!(stats.entries > 0, "{stats:?}");
}

#[test]
fn snapshot_roundtrips_after_concurrent_warming() {
    let triples = workload(SEED ^ 1);
    let cache = SemCache::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let triples = &triples;
            let cache = &cache;
            scope.spawn(move || {
                for (exec, cmd, s) in triples {
                    exec.sem_memo(cmd, s, cache);
                }
            });
        }
    });

    let (snapshot, exported) = cache.export_snapshot(usize::MAX);
    assert!(exported.exported > 0);
    let fresh = SemCache::new();
    let imported = fresh.import_snapshot(&snapshot);
    assert_eq!(imported.rejected, 0, "{imported:?}");
    assert_eq!(imported.loaded, exported.exported);
    // emit ∘ parse is a fixpoint: the canonical (sorted-line) snapshot of
    // the imported cache is byte-identical, so finitization ids renumbered
    // by the per-cache exec table cannot leak into the format.
    let (again, _) = fresh.export_snapshot(usize::MAX);
    assert_eq!(snapshot, again);

    // And the imported entries answer without recomputation or writes.
    let warmed = fresh.write_acquisitions();
    for (exec, cmd, s) in &triples {
        assert_eq!(&exec.sem_memo(cmd, s, &fresh), &exec.sem(cmd, s));
    }
    assert_eq!(fresh.write_acquisitions(), warmed);
}
