//! The extended semantics `sem(C, S)` (Definition 4) and Lemma 1.
//!
//! `sem(C, S)` lifts the big-step semantics to *sets of extended states*: it
//! is the set of extended states reachable by running `C` from some state of
//! `S`, with logical stores carried through unchanged (programs cannot touch
//! logical variables).
//!
//! Lemma 1's algebraic properties of `sem` are exposed as executable checks
//! used by the property-test suite:
//!
//! 1. `sem(C, S1 ∪ S2) = sem(C, S1) ∪ sem(C, S2)`
//! 2. `S ⊆ S' ⇒ sem(C, S) ⊆ sem(C, S')`
//! 4. `sem(skip, S) = S`
//! 5. `sem(C1; C2, S) = sem(C2, sem(C1, S))`
//! 6. `sem(C1 + C2, S) = sem(C1, S) ∪ sem(C2, S)`
//! 7. `sem(C*, S) = ⋃ₙ sem(Cⁿ, S)`

use crate::cmd::Cmd;
use crate::exec::ExecConfig;
use crate::state::ExtState;
use crate::stateset::StateSet;

impl ExecConfig {
    /// The extended semantics `sem(C, S)` (Def. 4):
    /// `{φ | ∃σ. (φ_L, σ) ∈ S ∧ ⟨C, σ⟩ → φ_P}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_lang::{Cmd, ExecConfig, Expr, ExtState, StateSet, Store, Value};
    /// let cfg = ExecConfig::default();
    /// let s = StateSet::singleton(ExtState::from_program(Store::new()));
    /// let out = cfg.sem(&Cmd::assign("x", Expr::int(3)), &s);
    /// assert_eq!(out.len(), 1);
    /// assert_eq!(out.iter().next().unwrap().program.get("x"), Value::Int(3));
    /// ```
    pub fn sem(&self, cmd: &Cmd, s: &StateSet) -> StateSet {
        s.flat_map(|phi| {
            let logical = phi.logical.clone();
            self.exec(cmd, &phi.program)
                .into_iter()
                .map(move |sigma| ExtState::new(logical.clone(), sigma))
        })
    }

    /// `sem(Cⁿ, S)` — extended semantics of the `n`-fold composition, used
    /// by Lemma 1(7) tests and the `Iter` rule checker.
    pub fn sem_pow(&self, cmd: &Cmd, n: u32, s: &StateSet) -> StateSet {
        self.sem(&cmd.pow(n), s)
    }
}

/// Executable Lemma 1 — each function returns `true` iff the corresponding
/// equation holds for the given inputs (they always should; the property
/// tests assert this over random instances).
pub mod lemma1 {
    use super::*;

    /// Lemma 1(1): `sem(C, S1 ∪ S2) = sem(C, S1) ∪ sem(C, S2)`.
    pub fn union_distributes(cfg: &ExecConfig, c: &Cmd, s1: &StateSet, s2: &StateSet) -> bool {
        cfg.sem(c, &s1.union(s2)) == cfg.sem(c, s1).union(&cfg.sem(c, s2))
    }

    /// Lemma 1(2): `S ⊆ S' ⇒ sem(C, S) ⊆ sem(C, S')`.
    pub fn monotone(cfg: &ExecConfig, c: &Cmd, s: &StateSet, s_sup: &StateSet) -> bool {
        !s.is_subset(s_sup) || cfg.sem(c, s).is_subset(&cfg.sem(c, s_sup))
    }

    /// Lemma 1(4): `sem(skip, S) = S`.
    pub fn skip_identity(cfg: &ExecConfig, s: &StateSet) -> bool {
        cfg.sem(&Cmd::Skip, s) == *s
    }

    /// Lemma 1(5): `sem(C1; C2, S) = sem(C2, sem(C1, S))`.
    pub fn seq_composes(cfg: &ExecConfig, c1: &Cmd, c2: &Cmd, s: &StateSet) -> bool {
        cfg.sem(&Cmd::seq(c1.clone(), c2.clone()), s) == cfg.sem(c2, &cfg.sem(c1, s))
    }

    /// Lemma 1(6): `sem(C1 + C2, S) = sem(C1, S) ∪ sem(C2, S)`.
    pub fn choice_unions(cfg: &ExecConfig, c1: &Cmd, c2: &Cmd, s: &StateSet) -> bool {
        cfg.sem(&Cmd::choice(c1.clone(), c2.clone()), s) == cfg.sem(c1, s).union(&cfg.sem(c2, s))
    }

    /// Lemma 1(7): `sem(C*, S) = ⋃_{n ≤ N} sem(Cⁿ, S)` where `N` is large
    /// enough to reach the fixpoint (here: the config's fuel).
    pub fn star_is_union_of_powers(cfg: &ExecConfig, c: &Cmd, s: &StateSet) -> bool {
        let star = cfg.sem(&Cmd::star(c.clone()), s);
        let mut acc = StateSet::new();
        for n in 0..=cfg.loop_fuel {
            let layer = cfg.sem_pow(c, n, s);
            let before = acc.len();
            acc = acc.union(&layer);
            if n > 0 && acc.len() == before {
                break; // no growth: fixpoint on finite spaces
            }
        }
        star == acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::state::Store;
    use crate::value::Value;

    fn phi(pairs: &[(&str, i64)]) -> ExtState {
        ExtState::from_program(Store::from_pairs(
            pairs.iter().map(|(k, v)| (*k, Value::Int(*v))),
        ))
    }

    fn set(states: Vec<ExtState>) -> StateSet {
        states.into_iter().collect()
    }

    #[test]
    fn sem_preserves_logical_store() {
        let cfg = ExecConfig::default();
        let mut st = phi(&[("x", 1)]);
        st.logical.set("t", Value::Int(42));
        let s = StateSet::singleton(st);
        let out = cfg.sem(&Cmd::assign("x", Expr::int(9)), &s);
        let result = out.iter().next().unwrap();
        assert_eq!(result.logical.get("t"), Value::Int(42));
        assert_eq!(result.program.get("x"), Value::Int(9));
    }

    #[test]
    fn sem_merges_collisions() {
        // Two initial states mapping to the same final state collapse.
        let cfg = ExecConfig::default();
        let s = set(vec![phi(&[("x", 1)]), phi(&[("x", 2)])]);
        let out = cfg.sem(&Cmd::assign("x", Expr::int(0)), &s);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn lemma1_on_concrete_instances() {
        let cfg = ExecConfig::int_range(0, 2).fuel(8);
        let c1 = Cmd::havoc("x");
        let c2 = Cmd::if_else(
            Expr::var("x").gt(Expr::int(0)),
            Cmd::assign("y", Expr::int(1)),
            Cmd::assign("y", Expr::int(0)),
        );
        let s1 = set(vec![phi(&[("x", 1)])]);
        let s2 = set(vec![phi(&[("x", 2)]), phi(&[("h", 5)])]);

        assert!(lemma1::union_distributes(&cfg, &c1, &s1, &s2));
        assert!(lemma1::monotone(&cfg, &c2, &s1, &s1.union(&s2)));
        assert!(lemma1::skip_identity(&cfg, &s2));
        assert!(lemma1::seq_composes(&cfg, &c1, &c2, &s2));
        assert!(lemma1::choice_unions(&cfg, &c1, &c2, &s1));
        let bump = Cmd::seq(
            Cmd::assume(Expr::var("x").lt(Expr::int(3))),
            Cmd::assign("x", Expr::var("x") + Expr::int(1)),
        );
        assert!(lemma1::star_is_union_of_powers(&cfg, &bump, &s1));
    }

    #[test]
    fn sem_empty_set_is_empty() {
        let cfg = ExecConfig::default();
        let out = cfg.sem(&Cmd::havoc("x"), &StateSet::new());
        assert!(out.is_empty());
    }

    #[test]
    fn assume_false_empties_any_set() {
        let cfg = ExecConfig::default();
        let s = set(vec![phi(&[("x", 1)]), phi(&[("x", 2)])]);
        assert!(cfg.sem(&Cmd::assume(Expr::bool(false)), &s).is_empty());
    }
}
