//! Memoized extended semantics: a shared, thread-safe cache for `sem(C, S)`.
//!
//! Batch verification re-evaluates the extended semantics (Def. 4) for the
//! same `(command, state-set)` pairs over and over: the validity checker
//! sweeps every candidate set against every triple, WP premises repeat the
//! suffixes of sequenced programs, loop checking replays the same body on
//! the same frontier sets, and a corpus of related specs shares program
//! prefixes wholesale. [`SemCache`] memoizes those evaluations behind an
//! `Arc`, so worker threads of the batch driver (`hhl-driver`) compute each
//! distinct evaluation once and share the result.
//!
//! Keys are `(finitization id, hash-consed command id, state set)`:
//!
//! * the *finitization id* exactly interns the havoc domain and loop fuel
//!   within the cache, so specs with different finitizations never alias;
//! * the command is keyed by [`CmdId`] ([`crate::intern_cmd`]), making the
//!   lookup key compact and the comparison integer-cheap;
//! * the state set is the canonical [`StateSet`], whose `Hash` is stable.
//!
//! [`ExecConfig::sem_memo`] evaluates through the cache *recursively*:
//! sequences memoize both halves, choices both branches, and `C*` runs a
//! set-level reachability fixpoint whose per-round body images are themselves
//! memoized — so a loop unrolled over the same frontier twice pays once.
//! `sem_memo` computes exactly [`ExecConfig::sem`] (a property-tested
//! equivalence); the cache changes performance, never verdicts.
//!
//! The table is sharded `RwLock`s: lookups — the overwhelming majority of
//! operations once the cache warms up — take shared read locks and proceed
//! concurrently, while only insertions take a shard's exclusive write lock.
//! On machines where workers time-slice few cores this is the difference
//! between scaling and *anti*-scaling: exclusive-lock handoffs on the hot
//! read path force context switches, which is exactly the jobs>1 slowdown
//! the earlier `Mutex`-sharded table exhibited. Hit/miss counters are
//! lock-free, and [`SemCache::write_acquisitions`] exposes the number of
//! exclusive acquisitions so tests can pin down that warm lookups never
//! serialize.
//!
//! Cold caches get the complementary treatment: compound evaluations are
//! **deduplicated in flight**. When several workers miss the same
//! `Seq`/`Choice`/`Star` key simultaneously — the normal case at batch
//! start, where neighbouring files share their expensive loop sweeps and
//! the pool deals those files to different workers — exactly one claims
//! the key and evaluates; the rest block on its completion and answer from
//! the freshly published entry. Duplicate evaluation of a leaf is cheaper
//! than the bookkeeping, so leaves race freely.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::cmd::Cmd;
use crate::exec::ExecConfig;
use crate::intern::{cmd_of, intern_cmd, CmdId};
use crate::parser::parse_cmd;
use crate::state::{ExtState, Store};
use crate::stateset::StateSet;
use crate::value::Value;

/// Number of independent lock shards. A power of two so the shard index is
/// a mask of the key hash. Generous relative to realistic worker counts:
/// shards are cheap (an empty map each), and over-provisioning keeps the
/// probability of two workers *writing* the same shard low.
const SHARDS: usize = 64;

/// The coarse half of a memo key: which finitization, which command. The
/// fine half (the input state set) indexes a nested map, so lookups borrow
/// the caller's set — the hit path never clones a `StateSet` key.
type Scope = (u64, CmdId);

/// Point-in-time counters of a [`SemCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} entr{} ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            if self.entries == 1 { "y" } else { "ies" },
            self.hit_rate() * 100.0
        )
    }
}

/// One memoized evaluation: the result set plus the wall-clock cost of
/// computing it when it was first evaluated (children included — a
/// compound's cost dominates its subterms', so cost-ranked snapshot
/// retention keeps roots, which is exactly what a warm import wants).
struct Memoized {
    out: StateSet,
    cost_ns: u64,
}

/// A sharded, thread-safe memo table for extended-semantics evaluations.
///
/// Share one cache across threads with `Arc<SemCache>`; all methods take
/// `&self`.
///
/// # Examples
///
/// ```
/// use hhl_lang::{parse_cmd, ExecConfig, ExtState, SemCache, StateSet, Store, Value};
/// let cache = SemCache::new();
/// let cfg = ExecConfig::default();
/// let c = parse_cmd("x := x + 1; x := x * 2").unwrap();
/// let s = StateSet::singleton(ExtState::from_program(
///     Store::from_pairs([("x", Value::Int(1))]),
/// ));
/// let first = cfg.sem_memo(&c, &s, &cache);
/// let again = cfg.sem_memo(&c, &s, &cache);
/// assert_eq!(first, again);
/// assert_eq!(first, cfg.sem(&c, &s));
/// assert!(cache.stats().hits > 0);
/// ```
pub struct SemCache {
    shards: Vec<RwLock<HashMap<Scope, HashMap<StateSet, Memoized>>>>,
    /// Per-cache exact interning of finitizations (see [`SemCache::exec_id`]).
    execs: RwLock<ExecTable>,
    /// Compound evaluations currently being computed, for in-flight
    /// deduplication (see [`SemCache::claim`]). Touched only on misses.
    inflight: Mutex<HashMap<(Scope, StateSet), Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Exclusive (write) lock acquisitions across all shards and the exec
    /// table — observable via [`SemCache::write_acquisitions`].
    writes: AtomicU64,
}

/// The marker for one in-flight compound evaluation: waiters sleep on the
/// condvar until the owner (or its unwinding stack) flips `done`.
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Outcome of [`SemCache::claim`].
enum Claim {
    /// The caller owns the evaluation and must publish + [`SemCache::finish`].
    Owner,
    /// Another worker owned it and has finished; re-probe the table.
    Waited,
}

/// Unwind-safe completion of a claimed evaluation: marks the flight done on
/// drop, so a panicking owner releases its waiters (which then re-probe,
/// miss, re-claim and recompute) instead of stranding them.
struct FlightGuard<'a> {
    cache: &'a SemCache,
    scope: Scope,
    states: &'a StateSet,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache.finish(self.scope, self.states);
    }
}

impl Default for SemCache {
    fn default() -> SemCache {
        SemCache::new()
    }
}

impl fmt::Debug for SemCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SemCache({})", self.stats())
    }
}

impl SemCache {
    /// An empty cache.
    pub fn new() -> SemCache {
        SemCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            execs: RwLock::new(ExecTable::default()),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Claims the right to evaluate `(scope, states)`, or waits for the
    /// worker that already holds it.
    ///
    /// Without this, racing workers that miss the same key all compute it —
    /// harmless for leaves, but a corpus whose expensive loop sweeps repeat
    /// across neighbouring files hands every worker the *same* sweep at
    /// batch start, and on few-core machines those duplicates are pure
    /// added wall time (the jobs>1 slowdown). Waiting is deadlock-free:
    /// a worker only ever waits for a key whose command is a strict subterm
    /// of everything it currently owns, and strict subterm chains cannot
    /// cycle.
    fn claim(&self, scope: Scope, states: &StateSet) -> Claim {
        let existing = {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");
            match inflight.entry((scope, states.clone())) {
                std::collections::hash_map::Entry::Occupied(e) => Some(e.get().clone()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Arc::new(Flight::default()));
                    None
                }
            }
        };
        match existing {
            None => Claim::Owner,
            Some(flight) => {
                let mut done = flight.done.lock().expect("flight poisoned");
                while !*done {
                    done = flight.cv.wait(done).expect("flight poisoned");
                }
                Claim::Waited
            }
        }
    }

    /// Releases a claimed key and wakes its waiters. Called via
    /// [`FlightGuard`] so it also runs on unwind. (`clear` deliberately
    /// leaves the in-flight table alone: removing an entry out from under
    /// its owner would strand that owner's waiters.)
    fn finish(&self, scope: Scope, states: &StateSet) {
        let flight = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(&(scope, states.clone()));
        if let Some(flight) = flight {
            *flight.done.lock().expect("flight poisoned") = true;
            flight.cv.notify_all();
        }
    }

    fn shard(&self, scope: &Scope) -> &RwLock<HashMap<Scope, HashMap<StateSet, Memoized>>> {
        let mut h = DefaultHasher::new();
        scope.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Lookups take a shard's *read* lock: concurrent hits never block one
    /// another, so a warmed-up cache adds no serialization point.
    fn get(&self, scope: Scope, states: &StateSet) -> Option<StateSet> {
        let hit = self
            .shard(&scope)
            .read()
            .expect("memo shard poisoned")
            .get(&scope)
            .and_then(|by_set| by_set.get(states))
            .map(|m| m.out.clone());
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, scope: Scope, states: StateSet, value: StateSet, cost_ns: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.shard(&scope)
            .write()
            .expect("memo shard poisoned")
            .entry(scope)
            .or_default()
            .insert(
                states,
                Memoized {
                    out: value,
                    cost_ns,
                },
            );
    }

    /// Total exclusive (write) lock acquisitions so far, across the memo
    /// shards and the finitization table. Deterministically zero for any
    /// window in which every lookup hits — the contract the concurrency
    /// regression tests assert instead of relying on wall-clock timing.
    pub fn write_acquisitions(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Current counters. Counts are exact under single-threaded use; under
    /// concurrency two workers may both miss the same key (both then insert
    /// the identical value), so totals are scheduling-dependent while cached
    /// *values* never are.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.read()
                        .expect("memo shard poisoned")
                        .values()
                        .map(HashMap::len)
                        .sum::<usize>()
                })
                .sum(),
        }
    }

    /// Drops every entry (including the finitization-interning table — ids
    /// are only meaningful against the entries they key) and resets the
    /// counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("memo shard poisoned").clear();
        }
        *self.execs.write().expect("exec table poisoned") = ExecTable::default();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// The exact interning id of a finitization (havoc domain + loop fuel)
    /// *within this cache*, used to key memo scopes so configurations never
    /// share results. Equal configurations get equal ids; distinct ones are
    /// guaranteed distinct (this is a table lookup, not a hash — the cache
    /// is soundness-bearing, so even a 2⁻⁶⁴ collision is not worth
    /// carrying).
    ///
    /// The table lives in the cache rather than in process-global state:
    /// its size is bounded by the cache's lifetime (and emptied by
    /// [`SemCache::clear`]) instead of growing for the life of the process,
    /// and the known-id fast path is a shared read lock, so concurrent
    /// evaluations resolving the same finitization never serialize.
    fn exec_id(&self, exec: &ExecConfig) -> u64 {
        let key = (exec.havoc_domain.clone(), exec.loop_fuel);
        if let Some(&id) = self
            .execs
            .read()
            .expect("exec table poisoned")
            .ids
            .get(&key)
        {
            return id;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut table = self.execs.write().expect("exec table poisoned");
        if let Some(&id) = table.ids.get(&key) {
            return id; // another worker interned it between our locks
        }
        let id = table.by_id.len() as u64;
        table.by_id.push(key.clone());
        table.ids.insert(key, id);
        id
    }

    /// Resolves every interned finitization id back to its `(domain, fuel)`
    /// pair — one read-lock acquisition for a whole snapshot export.
    fn finitizations_by_id(&self) -> Vec<Finitization> {
        self.execs
            .read()
            .expect("exec table poisoned")
            .by_id
            .clone()
    }
}

/// Exact interning of finitizations, per cache: each distinct
/// `(havoc_domain, loop_fuel)` pair gets a unique id, with the reverse
/// table kept in allocation order so ids resolve back to their pair.
type Finitization = (Vec<Value>, u32);

#[derive(Default)]
struct ExecTable {
    ids: HashMap<Finitization, u64>,
    by_id: Vec<Finitization>,
}

impl ExecConfig {
    /// [`ExecConfig::sem`] evaluated through a [`SemCache`].
    ///
    /// Returns exactly what `sem` returns; the cache only changes how much
    /// work is re-done. `skip` is evaluated inline (cheaper than a lookup).
    pub fn sem_memo(&self, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> StateSet {
        // Resolve the finitization id once per evaluation, not per node.
        self.sem_memo_at(cache.exec_id(self), cmd, s, cache)
    }

    fn sem_memo_at(&self, fp: u64, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> StateSet {
        if matches!(cmd, Cmd::Skip) {
            return s.clone();
        }
        let scope: Scope = (fp, intern_cmd(cmd));
        if let Some(hit) = cache.get(scope, s) {
            return hit;
        }
        // Leaves are cheaper than in-flight bookkeeping: evaluate directly
        // (a racing duplicate costs less than the claim would).
        if !matches!(cmd, Cmd::Seq(..) | Cmd::Choice(..) | Cmd::Star(..)) {
            let started = std::time::Instant::now();
            let out = self.sem(cmd, s);
            let cost = started.elapsed().as_nanos() as u64;
            cache.insert(scope, s.clone(), out.clone(), cost);
            return out;
        }
        // Compound evaluations — including every loop fixpoint — are claimed
        // so racing workers wait for the one computation instead of running
        // their own copy of it.
        while let Claim::Waited = cache.claim(scope, s) {
            if let Some(hit) = cache.get(scope, s) {
                return hit;
            }
            // The owner unwound without publishing; claim and compute.
        }
        let guard = FlightGuard {
            cache,
            scope,
            states: s,
        };
        let started = std::time::Instant::now();
        let out = match cmd {
            Cmd::Seq(c1, c2) => {
                let mid = self.sem_memo_at(fp, c1, s, cache);
                self.sem_memo_at(fp, c2, &mid, cache)
            }
            Cmd::Choice(c1, c2) => self
                .sem_memo_at(fp, c1, s, cache)
                .union(&self.sem_memo_at(fp, c2, s, cache)),
            // Set-level reachability fixpoint. Equivalent to the per-state
            // fixpoint of `exec`: a state lies within `fuel` BFS rounds of
            // the set iff it lies within `fuel` rounds of *some* member
            // (set-level depth is the member-wise minimum), and each round's
            // body image is a memoized `sem` — so re-walking the same loop
            // over the same frontier is a hit.
            Cmd::Star(c) => {
                let mut reached = s.clone();
                let mut frontier = s.clone();
                for _ in 0..self.loop_fuel {
                    let image = self.sem_memo_at(fp, c, &frontier, cache);
                    let fresh = image.filter(|phi| !reached.contains(phi));
                    if fresh.is_empty() {
                        break;
                    }
                    reached = reached.union(&fresh);
                    frontier = fresh;
                }
                reached
            }
            leaf => self.sem(leaf, s),
        };
        // Publish before releasing the flight: woken waiters re-probe the
        // table and must find the value there.
        let cost = started.elapsed().as_nanos() as u64;
        cache.insert(scope, s.clone(), out.clone(), cost);
        drop(guard);
        out
    }
}

// ---------------------------------------------------------------------------
// Persistent snapshots
// ---------------------------------------------------------------------------
//
// A snapshot is a line-oriented textual dump of a *subset* of the memo
// table, written by the batch driver's persistent store so warm entries
// survive process exit. The cache is soundness-bearing, so keys are
// reconstructed **exactly** — every line carries the full finitization,
// command source and both state sets, never a hash of them — and every
// line ends in a checksum so disk corruption turns into a rejected line,
// not a wrong semantics result. Command sources round-trip through
// `Cmd::to_source` with an emit ∘ parse fixpoint check on both sides.

/// Snapshot header line; bumping it invalidates old snapshots wholesale.
/// v3: each line carries the entry's recompute cost (nanoseconds, measured
/// when the entry was first evaluated) as an extra field before the
/// checksum, and the entry cap retains the *most expensive* entries
/// instead of a lexicographic prefix — the cap exists to bound disk and
/// import time, so the budget should go to the evaluations that are worth
/// the most wall-clock to not redo.
pub const SNAPSHOT_SCHEMA: &str = "hhl-memo v3";

const SNAPSHOT_HEADER: &str = SNAPSHOT_SCHEMA;

/// Counters from one [`SemCache::export_snapshot`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoSnapshotStats {
    /// Entries written to the snapshot.
    pub exported: u64,
    /// Entries dropped: beyond the entry cap, or not exactly serializable
    /// (an unparseable variable name, an id the tables no longer resolve).
    pub evicted: u64,
}

/// Counters from one [`SemCache::import_snapshot`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoImportStats {
    /// Entries reconstructed and inserted.
    pub loaded: u64,
    /// Lines refused: bad header, failed checksum, malformed fields, or an
    /// emit ∘ parse mismatch. Rejection is always safe — a rejected entry
    /// is recomputed, never guessed.
    pub rejected: u64,
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a/64 line checksum (corruption detection, not cryptography).
fn line_sum(body: &str) -> u64 {
    let mut state = FNV64_OFFSET;
    for &b in body.as_bytes() {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
    }
}

/// Serializes a store as `name=value;name=value` in *name* order (the
/// store's own order follows process-local symbol ids). Returns `None` when
/// a variable name would collide with the grammar's delimiters.
fn write_store(out: &mut String, s: &Store) -> Option<()> {
    let mut entries: Vec<(String, &Value)> = s.iter().map(|(k, v)| (k.as_str(), v)).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (name, value)) in entries.iter().enumerate() {
        if name.is_empty()
            || name
                .chars()
                .any(|c| "=;,|{}[]\t\n".contains(c) || c.is_whitespace())
        {
            return None;
        }
        if i > 0 {
            out.push(';');
        }
        out.push_str(name);
        out.push('=');
        write_value(out, value);
    }
    Some(())
}

/// `{logical}{program}`.
fn write_state(out: &mut String, phi: &ExtState) -> Option<()> {
    out.push('{');
    write_store(out, &phi.logical)?;
    out.push('}');
    out.push('{');
    write_store(out, &phi.program)?;
    out.push('}');
    Some(())
}

/// States joined by `|`, in serialized-text order (canonical across
/// processes; the set's own order follows process-local symbol ids).
fn write_set(out: &mut String, s: &StateSet) -> Option<()> {
    let mut rendered: Vec<String> = Vec::with_capacity(s.len());
    for phi in s.iter() {
        let mut one = String::new();
        write_state(&mut one, phi)?;
        rendered.push(one);
    }
    rendered.sort_unstable();
    out.push_str(&rendered.join("|"));
    Some(())
}

/// A cursor over a snapshot field.
struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> &'a str {
        let start = self.pos;
        while self.pos < self.src.len() && pred(self.src[self.pos]) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
    }

    fn parse_value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.parse_value()?);
                        if self.eat(b']') {
                            break;
                        }
                        if !self.eat(b',') {
                            return None;
                        }
                    }
                }
                Some(Value::List(items))
            }
            b't' | b'f' => {
                let word = self.take_while(|b| b.is_ascii_alphabetic());
                match word {
                    "true" => Some(Value::Bool(true)),
                    "false" => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            _ => {
                let start = self.pos;
                self.eat(b'-');
                let digits = self.take_while(|b| b.is_ascii_digit());
                if digits.is_empty() {
                    return None;
                }
                std::str::from_utf8(&self.src[start..self.pos])
                    .ok()?
                    .parse()
                    .ok()
                    .map(Value::Int)
            }
        }
    }

    fn parse_store(&mut self) -> Option<Store> {
        let mut store = Store::new();
        if self.peek() == Some(b'}') {
            return Some(store);
        }
        loop {
            let name = self.take_while(|b| b != b'=' && b != b'}');
            if name.is_empty() || !self.eat(b'=') {
                return None;
            }
            let value = self.parse_value()?;
            store.set(name, value);
            if self.peek() == Some(b'}') {
                return Some(store);
            }
            if !self.eat(b';') {
                return None;
            }
        }
    }

    fn parse_state(&mut self) -> Option<ExtState> {
        if !self.eat(b'{') {
            return None;
        }
        let logical = self.parse_store()?;
        if !self.eat(b'}') || !self.eat(b'{') {
            return None;
        }
        let program = self.parse_store()?;
        if !self.eat(b'}') {
            return None;
        }
        Some(ExtState { logical, program })
    }
}

fn parse_set(field: &str) -> Option<StateSet> {
    let mut set = StateSet::new();
    if field.is_empty() {
        return Some(set);
    }
    for part in field.split('|') {
        let mut sc = Scanner::new(part);
        let phi = sc.parse_state()?;
        if !sc.done() {
            return None;
        }
        set.insert(phi);
    }
    Some(set)
}

fn parse_domain(field: &str) -> Option<Vec<Value>> {
    let mut sc = Scanner::new(field);
    let mut out = Vec::new();
    if sc.done() {
        return Some(out);
    }
    loop {
        out.push(sc.parse_value()?);
        if sc.done() {
            return Some(out);
        }
        if !sc.eat(b',') {
            return None;
        }
    }
}

fn write_domain(out: &mut String, domain: &[Value]) {
    for (i, v) in domain.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_value(out, v);
    }
}

impl SemCache {
    /// Serializes up to `max_entries` memo entries as a textual snapshot.
    ///
    /// Every entry carries its **exact** key — the finitization, the
    /// command's canonical source ([`Cmd::to_source`], verified to re-parse
    /// to the identical tree before export), and the input set — plus the
    /// cached result, its recompute cost and a per-line checksum. Entries
    /// that cannot be serialized exactly are counted as `evicted`, as are
    /// entries beyond the cap: retention ranks by recompute cost
    /// (descending, ties broken by line text, so the choice is
    /// deterministic given the costs), keeping the entries that would be
    /// most expensive to re-evaluate. The retained lines are then sorted
    /// lexicographically, so the serialized form stays canonical for a
    /// given retained set.
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_lang::{parse_cmd, ExecConfig, ExtState, SemCache, StateSet, Store, Value};
    /// let cache = SemCache::new();
    /// let cfg = ExecConfig::int_range(0, 1);
    /// let c = parse_cmd("x := x + 1").unwrap();
    /// let s = StateSet::singleton(ExtState::from_program(
    ///     Store::from_pairs([("x", Value::Int(1))]),
    /// ));
    /// cfg.sem_memo(&c, &s, &cache);
    /// let (snapshot, stats) = cache.export_snapshot(1024);
    /// assert_eq!(stats.exported, 1);
    ///
    /// let warm = SemCache::new();
    /// assert_eq!(warm.import_snapshot(&snapshot).loaded, 1);
    /// assert_eq!(cfg.sem_memo(&c, &s, &warm), cfg.sem(&c, &s));
    /// assert_eq!(warm.stats().hits, 1); // answered from the snapshot
    /// ```
    pub fn export_snapshot(&self, max_entries: usize) -> (String, MemoSnapshotStats) {
        let mut stats = MemoSnapshotStats::default();
        let mut ranked: Vec<(u64, String)> = Vec::new();
        let finitizations = self.finitizations_by_id();
        for shard in &self.shards {
            let guard = shard.read().expect("memo shard poisoned");
            for (&(exec_id, cmd_id), by_set) in guard.iter() {
                let scope = finitizations
                    .get(exec_id as usize)
                    .and_then(|(domain, fuel)| {
                        let cmd = cmd_of(cmd_id)?;
                        let src = cmd.to_source();
                        // Exactness gate: only export commands whose canonical
                        // source re-parses to the identical tree.
                        (parse_cmd(&src).ok()? == cmd).then_some((domain.clone(), *fuel, src))
                    });
                let Some((domain, fuel, src)) = scope else {
                    stats.evicted += by_set.len() as u64;
                    continue;
                };
                let mut prefix = String::from("E\t");
                write_domain(&mut prefix, &domain);
                let _ = fmt::Write::write_fmt(&mut prefix, format_args!("\t{fuel}\t{src}\t"));
                for (input, memoized) in by_set.iter() {
                    let mut body = prefix.clone();
                    let ok = write_set(&mut body, input).and_then(|()| {
                        body.push('\t');
                        write_set(&mut body, &memoized.out)
                    });
                    if ok.is_none() {
                        stats.evicted += 1;
                        continue;
                    }
                    let _ =
                        fmt::Write::write_fmt(&mut body, format_args!("\t{}", memoized.cost_ns));
                    let sum = line_sum(&body);
                    let _ = fmt::Write::write_fmt(&mut body, format_args!("\t{sum:016x}"));
                    ranked.push((memoized.cost_ns, body));
                }
            }
        }
        if ranked.len() > max_entries {
            // Keep the entries most expensive to recompute; ties break on
            // line text so the retained set is a function of the costs.
            ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            stats.evicted += (ranked.len() - max_entries) as u64;
            ranked.truncate(max_entries);
        }
        let mut lines: Vec<String> = ranked.into_iter().map(|(_, line)| line).collect();
        lines.sort_unstable();
        stats.exported = lines.len() as u64;
        let mut out = String::from(SNAPSHOT_HEADER);
        out.push('\n');
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        (out, stats)
    }

    /// Loads entries from a snapshot produced by
    /// [`SemCache::export_snapshot`].
    ///
    /// Each line's checksum is verified and its key is reconstructed
    /// exactly (the command source must re-emit to the same text it was
    /// parsed from). Any line that fails any of these checks — truncation,
    /// bit flips, a foreign or future format — is counted as `rejected` and
    /// skipped: corruption can cost recomputation, never correctness.
    pub fn import_snapshot(&self, snapshot: &str) -> MemoImportStats {
        let mut stats = MemoImportStats::default();
        let mut lines = snapshot.lines();
        if lines.next() != Some(SNAPSHOT_HEADER) {
            stats.rejected = snapshot.lines().filter(|l| !l.is_empty()).count() as u64;
            return stats;
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if self.import_line(line).is_none() {
                stats.rejected += 1;
            } else {
                stats.loaded += 1;
            }
        }
        stats
    }

    fn import_line(&self, line: &str) -> Option<()> {
        let (body, sum_hex) = line.rsplit_once('\t')?;
        let sum = u64::from_str_radix(sum_hex, 16).ok()?;
        if sum != line_sum(body) || sum_hex.len() != 16 {
            return None;
        }
        let mut fields = body.split('\t');
        if fields.next() != Some("E") {
            return None;
        }
        let domain = parse_domain(fields.next()?)?;
        let fuel: u32 = fields.next()?.parse().ok()?;
        let src = fields.next()?;
        let input = parse_set(fields.next()?)?;
        let output = parse_set(fields.next()?)?;
        let cost_ns: u64 = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        let cmd = parse_cmd(src).ok()?;
        // Emit ∘ parse fixpoint: the reconstructed command must serialize
        // back to exactly the text on disk, so a printer/parser mismatch
        // can never smuggle a result under the wrong key.
        if cmd.to_source() != src {
            return None;
        }
        let exec = ExecConfig {
            havoc_domain: domain,
            loop_fuel: fuel,
        };
        let scope: Scope = (self.exec_id(&exec), intern_cmd(&cmd));
        // The imported cost is the recorded one, so a re-export reproduces
        // the snapshot byte-for-byte and cost ranking survives round trips.
        self.insert(scope, input, output, cost_ns);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::parser::parse_cmd;
    use crate::rng::Rng;
    use crate::state::{ExtState, Store};
    use crate::value::Value;

    fn set(xs: &[i64]) -> StateSet {
        xs.iter()
            .map(|&x| ExtState::from_program(Store::from_pairs([("x", Value::Int(x))])))
            .collect()
    }

    #[test]
    fn memo_agrees_with_sem_on_all_constructs() {
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 2).fuel(8);
        for src in [
            "skip",
            "x := x + 1",
            "x := nonDet()",
            "assume x > 0",
            "x := x + 1; x := x * 2",
            "if (x > 0) { x := 1 } else { x := 0 }",
            "while (x < 2) { x := x + 1 }",
            "{ x := x + 1 }*",
        ] {
            let cmd = parse_cmd(src).unwrap();
            for s in [set(&[]), set(&[0]), set(&[0, 1, 2])] {
                assert_eq!(
                    cfg.sem_memo(&cmd, &s, &cache),
                    cfg.sem(&cmd, &s),
                    "divergence on {src} with {s}"
                );
            }
        }
    }

    #[test]
    fn memo_agrees_with_sem_on_seeded_random_programs() {
        // The load-bearing equivalence: a cached evaluation must never
        // change a result, across random command shapes and input sets.
        let mut rng = Rng::seed_from_u64(0xB47C);
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(-1, 1).fuel(6);
        for _ in 0..60 {
            let cmd = random_cmd(&mut rng, 3);
            let states: Vec<i64> = (0..rng.gen_below(4))
                .map(|_| rng.gen_below(3) as i64 - 1)
                .collect();
            let s = set(&states);
            assert_eq!(cfg.sem_memo(&cmd, &s, &cache), cfg.sem(&cmd, &s), "{cmd}");
        }
    }

    fn random_cmd(rng: &mut Rng, depth: u32) -> Cmd {
        let leaf = depth == 0;
        match rng.gen_below(if leaf { 4 } else { 7 }) {
            0 => Cmd::Skip,
            1 => Cmd::assign("x", Expr::var("x") + Expr::int(rng.gen_below(3) as i64 - 1)),
            2 => Cmd::havoc("x"),
            3 => Cmd::assume(Expr::var("x").ge(Expr::int(rng.gen_below(3) as i64 - 1))),
            4 => Cmd::seq(random_cmd(rng, depth - 1), random_cmd(rng, depth - 1)),
            5 => Cmd::choice(random_cmd(rng, depth - 1), random_cmd(rng, depth - 1)),
            _ => Cmd::star(random_cmd(rng, depth - 1)),
        }
    }

    #[test]
    fn shared_subprograms_hit() {
        // Two sequences sharing the prefix `x := x + 1; x := x * 2`: the
        // second evaluation reuses the prefix entries.
        let cache = SemCache::new();
        let cfg = ExecConfig::default();
        let s = set(&[0, 1]);
        let a = parse_cmd("x := x + 1; x := x * 2; x := x - 1").unwrap();
        let b = parse_cmd("x := x + 1; x := x * 2; x := x + 5").unwrap();
        cfg.sem_memo(&a, &s, &cache);
        let before = cache.stats().hits;
        cfg.sem_memo(&b, &s, &cache);
        assert!(
            cache.stats().hits > before,
            "shared prefix must produce hits: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn distinct_exec_configs_never_alias() {
        let cache = SemCache::new();
        let narrow = ExecConfig::int_range(0, 1);
        let wide = ExecConfig::int_range(0, 3);
        let s = set(&[0]);
        let havoc = Cmd::havoc("x");
        assert_eq!(cfg_len(&narrow, &havoc, &s, &cache), 2);
        assert_eq!(cfg_len(&wide, &havoc, &s, &cache), 4);
    }

    fn cfg_len(cfg: &ExecConfig, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> usize {
        cfg.sem_memo(cmd, s, cache).len()
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        // Export from a populated cache, import into a fresh one, and the
        // warm cache must answer the same evaluations without recomputing.
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 2).fuel(6);
        let programs = [
            "x := x + 1; x := x * 2",
            "if (x > 0) { x := 1 } else { x := 0 }",
            "while (x < 2) { x := x + 1 }",
            "{ x := x + 1 } + { x := nonDet() }",
        ];
        for src in programs {
            let cmd = parse_cmd(src).unwrap();
            for s in [set(&[]), set(&[0, 1]), set(&[0, 1, 2])] {
                cfg.sem_memo(&cmd, &s, &cache);
            }
        }
        let (snapshot, stats) = cache.export_snapshot(usize::MAX);
        assert!(stats.exported > 0, "{stats:?}");
        assert_eq!(stats.evicted, 0, "{stats:?}");

        let warm = SemCache::new();
        let imported = warm.import_snapshot(&snapshot);
        assert_eq!(imported.loaded, stats.exported, "{imported:?}");
        assert_eq!(imported.rejected, 0, "{imported:?}");

        // Every top-level evaluation is now a pure replay: results agree
        // with `sem` and the warm cache never misses on the roots.
        for src in programs {
            let cmd = parse_cmd(src).unwrap();
            for s in [set(&[]), set(&[0, 1]), set(&[0, 1, 2])] {
                assert_eq!(cfg.sem_memo(&cmd, &s, &warm), cfg.sem(&cmd, &s), "{src}");
            }
        }
        // Re-exporting the warm cache reproduces the same snapshot (the
        // serialized form is canonical).
        let (again, _) = warm.export_snapshot(usize::MAX);
        assert_eq!(snapshot, again);
    }

    #[test]
    fn snapshot_rejects_corruption_without_panicking() {
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 1);
        let cmd = parse_cmd("x := x + 1; x := x - 1").unwrap();
        cfg.sem_memo(&cmd, &set(&[0, 1]), &cache);
        let (snapshot, stats) = cache.export_snapshot(usize::MAX);
        let entry_lines = stats.exported;

        // Wrong header: everything rejected.
        let foreign = snapshot.replacen(SNAPSHOT_SCHEMA, "hhl-memo v999", 1);
        let warm = SemCache::new();
        let imported = warm.import_snapshot(&foreign);
        assert_eq!(imported.loaded, 0);
        assert!(imported.rejected >= entry_lines);
        assert_eq!(warm.stats().entries, 0);

        // Bit flip in an entry body (inside the command source): that
        // line's checksum fails and the entry is rejected, not mis-keyed.
        let mut bytes = snapshot.clone().into_bytes();
        let target = snapshot.find("x - 1").expect("command source is on disk");
        bytes[target] ^= 0x01; // 'x' -> 'y'
        let flipped = String::from_utf8(bytes).expect("still utf-8");
        let warm = SemCache::new();
        let imported = warm.import_snapshot(&flipped);
        assert!(imported.rejected >= 1, "{imported:?}");

        // Truncation mid-line: the torn line is rejected, the rest loads.
        let truncated = &snapshot[..snapshot.len() - 10];
        let warm = SemCache::new();
        let imported = warm.import_snapshot(truncated);
        assert_eq!(imported.loaded + imported.rejected, entry_lines);
        assert!(imported.rejected >= 1, "{imported:?}");
    }

    #[test]
    fn snapshot_entry_cap_keeps_the_most_expensive_entries() {
        // Entries with controlled recompute costs: the cap must retain the
        // costliest ones, deterministically, and drop the cheap ones.
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 1);
        let exec = cache.exec_id(&cfg);
        for i in 0..6u64 {
            let cmd = parse_cmd(&format!("x := x + {i}")).unwrap();
            let scope: Scope = (exec, intern_cmd(&cmd));
            let input = set(&[0]);
            let output = cfg.sem(&cmd, &input);
            cache.insert(scope, input, output, (i + 1) * 1_000);
        }
        let (full, full_stats) = cache.export_snapshot(usize::MAX);
        assert_eq!(full_stats.exported, 6);
        let (capped, capped_stats) = cache.export_snapshot(4);
        assert_eq!(capped_stats.exported, 4);
        assert_eq!(capped_stats.evicted, 2);
        // The two cheapest entries (costs 1000 and 2000: `x + 0`, `x + 1`)
        // are the evicted ones; every retained line is in the full export.
        let full_lines: Vec<&str> = full.lines().collect();
        for line in capped.lines().skip(1) {
            assert!(full_lines.contains(&line), "capped line missing: {line}");
        }
        assert!(!capped.contains("x + 0\t"));
        assert!(!capped.contains("x + 1\t"));
        for kept in 2..6 {
            assert!(capped.contains(&format!("x + {kept}\t")), "lost x + {kept}");
        }
    }

    #[test]
    fn warm_lookups_acquire_no_write_locks() {
        // The contention regression test, stated deterministically instead
        // of with wall-clock timing: once every key is cached, concurrent
        // re-evaluations (including finitization-id resolution) are pure
        // read traffic — zero exclusive acquisitions, so lookups cannot
        // serialize behind a writer.
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 2).fuel(6);
        let cmd = parse_cmd("x := x + 1; { x := x + 1 }*").unwrap();
        let s = set(&[0, 1]);
        let expected = cfg.sem(&cmd, &s);
        cfg.sem_memo(&cmd, &s, &cache);
        let warmed = cache.write_acquisitions();
        assert!(warmed > 0, "warming must write");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(cfg.sem_memo(&cmd, &s, &cache), expected);
                    }
                });
            }
        });
        assert_eq!(cache.write_acquisitions(), warmed);
    }

    #[test]
    fn racing_miss_waits_for_the_inflight_owner() {
        // One worker owns an expensive compound key; a second worker that
        // misses the same key must wait and answer from the published
        // entry instead of recomputing. Pinned via the write counter: the
        // waiter performs zero table writes.
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 2).fuel(6);
        let cmd = parse_cmd("{ x := x + 1 }*").unwrap();
        let s = set(&[0]);
        let expected = cfg.sem(&cmd, &s);
        let scope: Scope = (cache.exec_id(&cfg), intern_cmd(&cmd));
        assert!(matches!(cache.claim(scope, &s), Claim::Owner));
        let flight = cache
            .inflight
            .lock()
            .unwrap()
            .get(&(scope, s.clone()))
            .unwrap()
            .clone();
        let writes_before = cache.write_acquisitions();
        std::thread::scope(|threads| {
            let waiter = threads.spawn(|| cfg.sem_memo(&cmd, &s, &cache));
            // Handshake: the waiter holds a clone of the flight only while
            // parked on it (map ref + ours + the waiter's = 3).
            let parked = std::time::Instant::now();
            while Arc::strong_count(&flight) < 3 {
                assert!(
                    parked.elapsed() < std::time::Duration::from_secs(10),
                    "waiter never parked on the in-flight key"
                );
                std::thread::yield_now();
            }
            cache.insert(scope, s.clone(), expected.clone(), 0);
            cache.finish(scope, &s);
            assert_eq!(waiter.join().expect("waiter panicked"), expected);
        });
        // The single write is the owner's publish; the waiter added none.
        assert_eq!(cache.write_acquisitions(), writes_before + 1);
    }

    #[test]
    fn exec_ids_are_per_cache_and_cleared() {
        // The finitization table lives in the cache: ids allocate
        // independently per cache, stay stable per (cache, finitization),
        // and clear() empties the table along with the entries it keys —
        // the table is bounded by the cache's lifetime, not the process's.
        let a = SemCache::new();
        let b = SemCache::new();
        let narrow = ExecConfig::int_range(0, 1);
        let wide = ExecConfig::int_range(0, 3);
        assert_eq!(a.exec_id(&wide), 0);
        assert_eq!(a.exec_id(&narrow), 1);
        assert_eq!(b.exec_id(&narrow), 0);
        assert_eq!(a.exec_id(&wide), 0);
        a.clear();
        assert_eq!(a.exec_id(&narrow), 0);
    }

    #[test]
    fn stats_and_clear() {
        let cache = SemCache::new();
        let cfg = ExecConfig::default();
        let s = set(&[0]);
        let c = parse_cmd("x := x + 1").unwrap();
        cfg.sem_memo(&c, &s, &cache);
        cfg.sem_memo(&c, &s, &cache);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.hit_rate() > 0.49);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
