//! Memoized extended semantics: a shared, thread-safe cache for `sem(C, S)`.
//!
//! Batch verification re-evaluates the extended semantics (Def. 4) for the
//! same `(command, state-set)` pairs over and over: the validity checker
//! sweeps every candidate set against every triple, WP premises repeat the
//! suffixes of sequenced programs, loop checking replays the same body on
//! the same frontier sets, and a corpus of related specs shares program
//! prefixes wholesale. [`SemCache`] memoizes those evaluations behind an
//! `Arc`, so worker threads of the batch driver (`hhl-driver`) compute each
//! distinct evaluation once and share the result.
//!
//! Keys are `(execution fingerprint, hash-consed command id, state set)`:
//!
//! * the *fingerprint* ([`ExecConfig::fingerprint`]) covers the havoc domain
//!   and loop fuel, so specs with different finitizations never alias;
//! * the command is keyed by [`CmdId`] ([`crate::intern_cmd`]), making the
//!   lookup key compact and the comparison integer-cheap;
//! * the state set is the canonical [`StateSet`], whose `Hash` is stable.
//!
//! [`ExecConfig::sem_memo`] evaluates through the cache *recursively*:
//! sequences memoize both halves, choices both branches, and `C*` runs a
//! set-level reachability fixpoint whose per-round body images are themselves
//! memoized — so a loop unrolled over the same frontier twice pays once.
//! `sem_memo` computes exactly [`ExecConfig::sem`] (a property-tested
//! equivalence); the cache changes performance, never verdicts.
//!
//! The table is sharded to keep lock contention low under the work-stealing
//! scheduler; hit/miss counters are lock-free.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::cmd::Cmd;
use crate::exec::ExecConfig;
use crate::intern::{intern_cmd, CmdId};
use crate::stateset::StateSet;

/// Number of independent lock shards. A power of two so the shard index is
/// a mask of the key hash.
const SHARDS: usize = 16;

/// The coarse half of a memo key: which finitization, which command. The
/// fine half (the input state set) indexes a nested map, so lookups borrow
/// the caller's set — the hit path never clones a `StateSet` key.
type Scope = (u64, CmdId);

/// Point-in-time counters of a [`SemCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} entr{} ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            if self.entries == 1 { "y" } else { "ies" },
            self.hit_rate() * 100.0
        )
    }
}

/// A sharded, thread-safe memo table for extended-semantics evaluations.
///
/// Share one cache across threads with `Arc<SemCache>`; all methods take
/// `&self`.
///
/// # Examples
///
/// ```
/// use hhl_lang::{parse_cmd, ExecConfig, ExtState, SemCache, StateSet, Store, Value};
/// let cache = SemCache::new();
/// let cfg = ExecConfig::default();
/// let c = parse_cmd("x := x + 1; x := x * 2").unwrap();
/// let s = StateSet::singleton(ExtState::from_program(
///     Store::from_pairs([("x", Value::Int(1))]),
/// ));
/// let first = cfg.sem_memo(&c, &s, &cache);
/// let again = cfg.sem_memo(&c, &s, &cache);
/// assert_eq!(first, again);
/// assert_eq!(first, cfg.sem(&c, &s));
/// assert!(cache.stats().hits > 0);
/// ```
pub struct SemCache {
    shards: Vec<Mutex<HashMap<Scope, HashMap<StateSet, StateSet>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SemCache {
    fn default() -> SemCache {
        SemCache::new()
    }
}

impl fmt::Debug for SemCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SemCache({})", self.stats())
    }
}

impl SemCache {
    /// An empty cache.
    pub fn new() -> SemCache {
        SemCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, scope: &Scope) -> &Mutex<HashMap<Scope, HashMap<StateSet, StateSet>>> {
        let mut h = DefaultHasher::new();
        scope.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    fn get(&self, scope: Scope, states: &StateSet) -> Option<StateSet> {
        let hit = self
            .shard(&scope)
            .lock()
            .expect("memo shard poisoned")
            .get(&scope)
            .and_then(|by_set| by_set.get(states))
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, scope: Scope, states: StateSet, value: StateSet) {
        self.shard(&scope)
            .lock()
            .expect("memo shard poisoned")
            .entry(scope)
            .or_default()
            .insert(states, value);
    }

    /// Current counters. Counts are exact under single-threaded use; under
    /// concurrency two workers may both miss the same key (both then insert
    /// the identical value), so totals are scheduling-dependent while cached
    /// *values* never are.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .expect("memo shard poisoned")
                        .values()
                        .map(HashMap::len)
                        .sum::<usize>()
                })
                .sum(),
        }
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("memo shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Process-wide exact interning of finitizations: each distinct
/// `(havoc_domain, loop_fuel)` pair gets a unique id. Interning (rather
/// than hashing) means two configurations can never alias a memo scope —
/// the cache is soundness-bearing, so even a 2⁻⁶⁴ collision is not worth
/// carrying.
type Finitization = (Vec<crate::value::Value>, u32);

fn exec_table() -> &'static Mutex<HashMap<Finitization, u64>> {
    static TABLE: OnceLock<Mutex<HashMap<Finitization, u64>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl ExecConfig {
    /// The exact interning id of this finitization (havoc domain + loop
    /// fuel), used to key memo entries so configurations never share
    /// results. Equal configurations get equal ids; distinct ones are
    /// guaranteed distinct (this is a table lookup, not a hash).
    pub fn fingerprint(&self) -> u64 {
        let mut table = exec_table().lock().expect("exec table poisoned");
        let next = table.len() as u64;
        *table
            .entry((self.havoc_domain.clone(), self.loop_fuel))
            .or_insert(next)
    }

    /// [`ExecConfig::sem`] evaluated through a [`SemCache`].
    ///
    /// Returns exactly what `sem` returns; the cache only changes how much
    /// work is re-done. `skip` is evaluated inline (cheaper than a lookup).
    pub fn sem_memo(&self, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> StateSet {
        // Resolve the finitization id once per evaluation, not per node.
        self.sem_memo_at(self.fingerprint(), cmd, s, cache)
    }

    fn sem_memo_at(&self, fp: u64, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> StateSet {
        if matches!(cmd, Cmd::Skip) {
            return s.clone();
        }
        let scope: Scope = (fp, intern_cmd(cmd));
        if let Some(hit) = cache.get(scope, s) {
            return hit;
        }
        let out = match cmd {
            Cmd::Seq(c1, c2) => {
                let mid = self.sem_memo_at(fp, c1, s, cache);
                self.sem_memo_at(fp, c2, &mid, cache)
            }
            Cmd::Choice(c1, c2) => self
                .sem_memo_at(fp, c1, s, cache)
                .union(&self.sem_memo_at(fp, c2, s, cache)),
            // Set-level reachability fixpoint. Equivalent to the per-state
            // fixpoint of `exec`: a state lies within `fuel` BFS rounds of
            // the set iff it lies within `fuel` rounds of *some* member
            // (set-level depth is the member-wise minimum), and each round's
            // body image is a memoized `sem` — so re-walking the same loop
            // over the same frontier is a hit.
            Cmd::Star(c) => {
                let mut reached = s.clone();
                let mut frontier = s.clone();
                for _ in 0..self.loop_fuel {
                    let image = self.sem_memo_at(fp, c, &frontier, cache);
                    let fresh = image.filter(|phi| !reached.contains(phi));
                    if fresh.is_empty() {
                        break;
                    }
                    reached = reached.union(&fresh);
                    frontier = fresh;
                }
                reached
            }
            leaf => self.sem(leaf, s),
        };
        cache.insert(scope, s.clone(), out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::parser::parse_cmd;
    use crate::rng::Rng;
    use crate::state::{ExtState, Store};
    use crate::value::Value;

    fn set(xs: &[i64]) -> StateSet {
        xs.iter()
            .map(|&x| ExtState::from_program(Store::from_pairs([("x", Value::Int(x))])))
            .collect()
    }

    #[test]
    fn memo_agrees_with_sem_on_all_constructs() {
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(0, 2).fuel(8);
        for src in [
            "skip",
            "x := x + 1",
            "x := nonDet()",
            "assume x > 0",
            "x := x + 1; x := x * 2",
            "if (x > 0) { x := 1 } else { x := 0 }",
            "while (x < 2) { x := x + 1 }",
            "{ x := x + 1 }*",
        ] {
            let cmd = parse_cmd(src).unwrap();
            for s in [set(&[]), set(&[0]), set(&[0, 1, 2])] {
                assert_eq!(
                    cfg.sem_memo(&cmd, &s, &cache),
                    cfg.sem(&cmd, &s),
                    "divergence on {src} with {s}"
                );
            }
        }
    }

    #[test]
    fn memo_agrees_with_sem_on_seeded_random_programs() {
        // The load-bearing equivalence: a cached evaluation must never
        // change a result, across random command shapes and input sets.
        let mut rng = Rng::seed_from_u64(0xB47C);
        let cache = SemCache::new();
        let cfg = ExecConfig::int_range(-1, 1).fuel(6);
        for _ in 0..60 {
            let cmd = random_cmd(&mut rng, 3);
            let states: Vec<i64> = (0..rng.gen_below(4))
                .map(|_| rng.gen_below(3) as i64 - 1)
                .collect();
            let s = set(&states);
            assert_eq!(cfg.sem_memo(&cmd, &s, &cache), cfg.sem(&cmd, &s), "{cmd}");
        }
    }

    fn random_cmd(rng: &mut Rng, depth: u32) -> Cmd {
        let leaf = depth == 0;
        match rng.gen_below(if leaf { 4 } else { 7 }) {
            0 => Cmd::Skip,
            1 => Cmd::assign("x", Expr::var("x") + Expr::int(rng.gen_below(3) as i64 - 1)),
            2 => Cmd::havoc("x"),
            3 => Cmd::assume(Expr::var("x").ge(Expr::int(rng.gen_below(3) as i64 - 1))),
            4 => Cmd::seq(random_cmd(rng, depth - 1), random_cmd(rng, depth - 1)),
            5 => Cmd::choice(random_cmd(rng, depth - 1), random_cmd(rng, depth - 1)),
            _ => Cmd::star(random_cmd(rng, depth - 1)),
        }
    }

    #[test]
    fn shared_subprograms_hit() {
        // Two sequences sharing the prefix `x := x + 1; x := x * 2`: the
        // second evaluation reuses the prefix entries.
        let cache = SemCache::new();
        let cfg = ExecConfig::default();
        let s = set(&[0, 1]);
        let a = parse_cmd("x := x + 1; x := x * 2; x := x - 1").unwrap();
        let b = parse_cmd("x := x + 1; x := x * 2; x := x + 5").unwrap();
        cfg.sem_memo(&a, &s, &cache);
        let before = cache.stats().hits;
        cfg.sem_memo(&b, &s, &cache);
        assert!(
            cache.stats().hits > before,
            "shared prefix must produce hits: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn distinct_exec_configs_never_alias() {
        let cache = SemCache::new();
        let narrow = ExecConfig::int_range(0, 1);
        let wide = ExecConfig::int_range(0, 3);
        let s = set(&[0]);
        let havoc = Cmd::havoc("x");
        assert_eq!(cfg_len(&narrow, &havoc, &s, &cache), 2);
        assert_eq!(cfg_len(&wide, &havoc, &s, &cache), 4);
    }

    fn cfg_len(cfg: &ExecConfig, cmd: &Cmd, s: &StateSet, cache: &SemCache) -> usize {
        cfg.sem_memo(cmd, s, cache).len()
    }

    #[test]
    fn stats_and_clear() {
        let cache = SemCache::new();
        let cfg = ExecConfig::default();
        let s = set(&[0]);
        let c = parse_cmd("x := x + 1").unwrap();
        cfg.sem_memo(&c, &s, &cache);
        cfg.sem_memo(&c, &s, &cache);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.hit_rate() > 0.49);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
