//! Program commands (Definition 1).
//!
//! ```text
//! C ::= skip | x := e | x := nonDet() | assume b | C; C | C + C | C*
//! ```
//!
//! Deterministic `if` and `while` are *derived* exactly as in the paper:
//!
//! ```text
//! if (b) {C1} else {C2} ≜ (assume b; C1) + (assume !b; C2)
//! if (b) {C}            ≜ (assume b; C) + (assume !b)
//! while (b) {C}         ≜ (assume b; C)*; assume !b
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::Expr;
use crate::intern::Symbol;

/// A program command (Def. 1).
///
/// # Examples
///
/// ```
/// use hhl_lang::{Cmd, Expr};
/// // y := nonDet(); assume y <= 9; l := h + y   (the C4 program of §2.3)
/// let c4 = Cmd::seq_all([
///     Cmd::havoc("y"),
///     Cmd::assume(Expr::var("y").le(Expr::int(9))),
///     Cmd::assign("l", Expr::var("h") + Expr::var("y")),
/// ]);
/// assert_eq!(c4.size(), 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmd {
    /// `skip` — no effect.
    Skip,
    /// `x := e` — deterministic assignment.
    Assign(Symbol, Expr),
    /// `x := nonDet()` — non-deterministic assignment (havoc).
    Havoc(Symbol),
    /// `assume b` — continue only in states satisfying `b`.
    Assume(Expr),
    /// `C1; C2` — sequential composition.
    Seq(Box<Cmd>, Box<Cmd>),
    /// `C1 + C2` — non-deterministic choice.
    Choice(Box<Cmd>, Box<Cmd>),
    /// `C*` — non-deterministic iteration (any finite number of times).
    Star(Box<Cmd>),
}

impl Cmd {
    /// `x := e`.
    pub fn assign<S: Into<Symbol>>(x: S, e: Expr) -> Cmd {
        Cmd::Assign(x.into(), e)
    }

    /// `x := nonDet()`.
    pub fn havoc<S: Into<Symbol>>(x: S) -> Cmd {
        Cmd::Havoc(x.into())
    }

    /// `assume b`.
    pub fn assume(b: Expr) -> Cmd {
        Cmd::Assume(b)
    }

    /// `C1; C2`.
    pub fn seq(c1: Cmd, c2: Cmd) -> Cmd {
        Cmd::Seq(Box::new(c1), Box::new(c2))
    }

    /// Right-nested sequence of all commands (`skip` if empty).
    pub fn seq_all<I: IntoIterator<Item = Cmd>>(cmds: I) -> Cmd {
        let mut items: Vec<Cmd> = cmds.into_iter().collect();
        match items.len() {
            0 => Cmd::Skip,
            1 => items.pop().expect("len checked"),
            _ => {
                let mut acc = items.pop().expect("len checked");
                while let Some(c) = items.pop() {
                    acc = Cmd::seq(c, acc);
                }
                acc
            }
        }
    }

    /// `C1 + C2`.
    pub fn choice(c1: Cmd, c2: Cmd) -> Cmd {
        Cmd::Choice(Box::new(c1), Box::new(c2))
    }

    /// `C*`.
    pub fn star(c: Cmd) -> Cmd {
        Cmd::Star(Box::new(c))
    }

    /// Derived `if (b) {c1} else {c2}` — `(assume b; c1) + (assume !b; c2)`.
    pub fn if_else(b: Expr, c1: Cmd, c2: Cmd) -> Cmd {
        Cmd::choice(
            Cmd::seq(Cmd::assume(b.clone()), c1),
            Cmd::seq(Cmd::assume(b.not()), c2),
        )
    }

    /// Derived `if (b) {c}` — `(assume b; c) + (assume !b)`.
    pub fn if_then(b: Expr, c: Cmd) -> Cmd {
        Cmd::choice(Cmd::seq(Cmd::assume(b.clone()), c), Cmd::assume(b.not()))
    }

    /// Derived `while (b) {c}` — `(assume b; c)*; assume !b`.
    pub fn while_loop(b: Expr, c: Cmd) -> Cmd {
        Cmd::seq(
            Cmd::star(Cmd::seq(Cmd::assume(b.clone()), c)),
            Cmd::assume(b.not()),
        )
    }

    /// `y := randIntBounded(a, b)` — the §2.1 sugar
    /// `y := nonDet(); assume a <= y <= b`.
    pub fn rand_int_bounded<S: Into<Symbol>>(y: S, a: Expr, b: Expr) -> Cmd {
        let y = y.into();
        Cmd::seq(
            Cmd::Havoc(y),
            Cmd::assume(a.le(Expr::Var(y)).and(Expr::Var(y).le(b))),
        )
    }

    /// `C^n` — `n`-fold sequential self-composition (`skip` for `n = 0`),
    /// as used in Lemma 1(7).
    pub fn pow(&self, n: u32) -> Cmd {
        let mut acc = Cmd::Skip;
        for _ in 0..n {
            acc = if acc == Cmd::Skip {
                self.clone()
            } else {
                Cmd::seq(acc, self.clone())
            };
        }
        acc
    }

    /// The set `wr(C)` of program variables potentially written by `C`
    /// (left-hand sides of assignments and havocs) — the side condition of
    /// the frame rules (Fig. 11 / Fig. 14).
    pub fn written_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_written(&mut out);
        out
    }

    fn collect_written(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Cmd::Skip | Cmd::Assume(_) => {}
            Cmd::Assign(x, _) | Cmd::Havoc(x) => {
                out.insert(*x);
            }
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
                a.collect_written(out);
                b.collect_written(out);
            }
            Cmd::Star(a) => a.collect_written(out),
        }
    }

    /// All program variables mentioned anywhere in the command.
    pub fn all_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_all_vars(&mut out);
        out
    }

    fn collect_all_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Cmd::Skip => {}
            Cmd::Assign(x, e) => {
                out.insert(*x);
                e.collect_vars(out);
            }
            Cmd::Havoc(x) => {
                out.insert(*x);
            }
            Cmd::Assume(b) => b.collect_vars(out),
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
                a.collect_all_vars(out);
                b.collect_all_vars(out);
            }
            Cmd::Star(a) => a.collect_all_vars(out),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Cmd::Skip | Cmd::Assign(_, _) | Cmd::Havoc(_) | Cmd::Assume(_) => 1,
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => 1 + a.size() + b.size(),
            Cmd::Star(a) => 1 + a.size(),
        }
    }

    /// Canonical, re-parseable source form: `parse_cmd(c.to_source())`
    /// yields a command *structurally equal* to `c` — including sequence
    /// nesting, which `Display` flattens ([`crate::parse_cmd`] right-nests
    /// `a; b; c`, so a left-nested `Seq` is emitted with explicit braces).
    ///
    /// `Display` stays the human-facing form (it prints choice and
    /// iteration with parentheses, which the statement grammar does not
    /// accept); `to_source` is the machine round-trip used to serialize
    /// exact memo keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_lang::parse_cmd;
    /// let c = parse_cmd("{ x := 1 } + { x := 2 }; { y := y + 1 }*").unwrap();
    /// assert_eq!(parse_cmd(&c.to_source()).unwrap(), c);
    /// ```
    pub fn to_source(&self) -> String {
        fn emit(c: &Cmd, out: &mut String) {
            match c {
                Cmd::Skip => out.push_str("skip"),
                Cmd::Assign(x, e) => {
                    out.push_str(&format!("{x} := {e}"));
                }
                Cmd::Havoc(x) => out.push_str(&format!("{x} := nonDet()")),
                Cmd::Assume(b) => out.push_str(&format!("assume {b}")),
                Cmd::Seq(a, b) => {
                    // `x; y; z` re-parses right-nested, so only the right
                    // operand may itself be a bare sequence.
                    if matches!(**a, Cmd::Seq(_, _)) {
                        out.push_str("{ ");
                        emit(a, out);
                        out.push_str(" }");
                    } else {
                        emit(a, out);
                    }
                    out.push_str("; ");
                    emit(b, out);
                }
                Cmd::Choice(a, b) => {
                    // Choice chains left-associate in the grammar, so the
                    // left spine flattens (`{x} + {y} + {z}`) and every
                    // other operand gets its own block.
                    if matches!(**a, Cmd::Choice(_, _)) {
                        emit(a, out);
                    } else {
                        out.push_str("{ ");
                        emit(a, out);
                        out.push_str(" }");
                    }
                    out.push_str(" + { ");
                    emit(b, out);
                    out.push_str(" }");
                }
                Cmd::Star(a) => {
                    out.push_str("{ ");
                    emit(a, out);
                    out.push_str(" }*");
                }
            }
        }
        let mut out = String::new();
        emit(self, &mut out);
        out
    }

    /// True iff the command contains no `Star` (loop-free commands admit
    /// exact backward verification-condition generation).
    pub fn is_loop_free(&self) -> bool {
        match self {
            Cmd::Skip | Cmd::Assign(_, _) | Cmd::Havoc(_) | Cmd::Assume(_) => true,
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => a.is_loop_free() && b.is_loop_free(),
            Cmd::Star(_) => false,
        }
    }
}

impl fmt::Display for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmd::Skip => write!(f, "skip"),
            Cmd::Assign(x, e) => write!(f, "{x} := {e}"),
            Cmd::Havoc(x) => write!(f, "{x} := nonDet()"),
            Cmd::Assume(b) => write!(f, "assume {b}"),
            Cmd::Seq(a, b) => write!(f, "{a}; {b}"),
            Cmd::Choice(a, b) => write!(f, "({a}) + ({b})"),
            Cmd::Star(a) => write!(f, "({a})*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desugarings_match_paper() {
        let b = Expr::var("x").gt(Expr::int(0));
        let c = Cmd::assign("y", Expr::int(1));
        // if (b) {C1} else {C2} = (assume b; C1) + (assume !b; C2)
        let ite = Cmd::if_else(b.clone(), c.clone(), Cmd::Skip);
        match &ite {
            Cmd::Choice(l, r) => {
                assert!(matches!(**l, Cmd::Seq(_, _)));
                assert!(matches!(**r, Cmd::Seq(_, _)));
            }
            other => panic!("expected Choice, got {other:?}"),
        }
        // while (b) {C} = (assume b; C)*; assume !b
        let w = Cmd::while_loop(b, c);
        match &w {
            Cmd::Seq(l, r) => {
                assert!(matches!(**l, Cmd::Star(_)));
                assert!(matches!(**r, Cmd::Assume(_)));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn written_vars_collects_assignments_and_havocs() {
        let c = Cmd::seq_all([
            Cmd::havoc("y"),
            Cmd::assume(Expr::var("z").le(Expr::int(9))),
            Cmd::assign("l", Expr::var("h") + Expr::var("y")),
        ]);
        let w = c.written_vars();
        assert!(w.contains(&Symbol::new("y")));
        assert!(w.contains(&Symbol::new("l")));
        assert!(!w.contains(&Symbol::new("h")));
        assert!(!w.contains(&Symbol::new("z")));
    }

    #[test]
    fn all_vars_includes_reads() {
        let c = Cmd::assign("l", Expr::var("h") + Expr::var("y"));
        let v = c.all_vars();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn pow_builds_n_fold_seq() {
        let c = Cmd::assign("x", Expr::var("x") + Expr::int(1));
        assert_eq!(c.pow(0), Cmd::Skip);
        assert_eq!(c.pow(1), c);
        assert_eq!(c.pow(3).size(), 5); // 3 assigns + 2 seqs
    }

    #[test]
    fn seq_all_edge_cases() {
        assert_eq!(Cmd::seq_all([]), Cmd::Skip);
        let single = Cmd::havoc("x");
        assert_eq!(Cmd::seq_all([single.clone()]), single);
    }

    #[test]
    fn loop_free_detection() {
        assert!(Cmd::if_else(Expr::bool(true), Cmd::Skip, Cmd::Skip).is_loop_free());
        assert!(!Cmd::while_loop(Expr::bool(true), Cmd::Skip).is_loop_free());
    }

    #[test]
    fn display_roundtrip_shapes() {
        let c = Cmd::seq(
            Cmd::havoc("y"),
            Cmd::assign("l", Expr::var("h") + Expr::var("y")),
        );
        assert_eq!(c.to_string(), "y := nonDet(); l := h + y");
    }

    #[test]
    fn to_source_roundtrips_structurally() {
        use crate::parser::parse_cmd;
        let step = Cmd::assign("x", Expr::var("x") + Expr::int(1));
        let cases = [
            Cmd::Skip,
            step.clone(),
            Cmd::havoc("y"),
            Cmd::assume(Expr::var("x").gt(Expr::int(-1))),
            // Right- and left-nested sequences are distinct trees and must
            // both survive the round trip (Display would flatten them).
            Cmd::seq(step.clone(), Cmd::seq(step.clone(), step.clone())),
            Cmd::seq(Cmd::seq(step.clone(), step.clone()), step.clone()),
            step.clone().pow(4),
            Cmd::choice(
                Cmd::choice(step.clone(), Cmd::Skip),
                Cmd::choice(Cmd::Skip, step.clone()),
            ),
            Cmd::star(Cmd::choice(step.clone(), Cmd::star(step.clone()))),
            Cmd::while_loop(Expr::var("i").lt(Expr::var("n")), step.clone()),
            Cmd::if_else(Expr::var("h").gt(Expr::int(0)), step, Cmd::Skip),
        ];
        for c in cases {
            let src = c.to_source();
            assert_eq!(parse_cmd(&src).expect(&src), c, "source: {src}");
        }
    }

    #[test]
    fn rand_int_bounded_shape() {
        let c = Cmd::rand_int_bounded("x", Expr::int(0), Expr::int(9));
        assert!(matches!(c, Cmd::Seq(_, _)));
        assert_eq!(c.written_vars().len(), 1);
    }
}
