//! # hhl-lang — language & semantics substrate for Hyper Hoare Logic
//!
//! This crate implements the programming language of *Hyper Hoare Logic:
//! (Dis-)Proving Program Hyperproperties* (Dardinier & Müller, PLDI 2024),
//! §3.1 and Appendix A:
//!
//! * [`Value`], [`Store`], [`ExtState`] — program states `PVars → PVals` and
//!   extended states `(LVars → LVals) × PStates` (Defs. 1–2);
//! * [`Expr`] — total program expressions and state predicates;
//! * [`Cmd`] — the command language `skip | x := e | x := nonDet() |
//!   assume b | C;C | C+C | C*` with the paper's `if`/`while` desugarings;
//! * [`ExecConfig::exec`] — the big-step semantics of Fig. 9, finitized as
//!   described in `DESIGN.md`;
//! * [`ExecConfig::sem`] — the extended semantics over [`StateSet`]s
//!   (Def. 4) with [`sem::lemma1`] as executable lemmas;
//! * [`parse_cmd`] / [`parse_expr`] — a textual surface syntax.
//!
//! # Quick example
//!
//! ```
//! use hhl_lang::{parse_cmd, ExecConfig, ExtState, StateSet, Store, Value};
//!
//! // The insecure program C2 from §2.2 of the paper.
//! let c2 = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").unwrap();
//! let cfg = ExecConfig::default();
//!
//! let init: StateSet = [
//!     ExtState::from_program(Store::from_pairs([("h", Value::Int(1))])),
//!     ExtState::from_program(Store::from_pairs([("h", Value::Int(-1))])),
//! ]
//! .into_iter()
//! .collect();
//!
//! let finals = cfg.sem(&c2, &init);
//! // Two executions with equal low inputs produce different low outputs:
//! // the set of final values of l is {0, 1} — C2 violates non-interference.
//! let ls: std::collections::BTreeSet<_> =
//!     finals.iter().map(|phi| phi.program.get("l")).collect();
//! assert_eq!(ls.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmd;
mod exec;
mod expr;
pub mod fp;
mod intern;
pub mod memo;
mod parser;
pub mod rng;
pub mod sem;
pub mod smallstep;
mod state;
mod stateset;
mod value;

pub use cmd::Cmd;
pub use exec::ExecConfig;
pub use expr::{BinOp, Expr, UnOp};
pub use fp::{
    fp_cmd, fp_cmd_id, fp_expr, fp_expr_id, fp_symbols, fp_value, Fingerprint, StableHasher,
};
pub use intern::{
    begin_session, intern_cmd, intern_expr, intern_sizes, pin_interner, CmdId, ExprId, InternPin,
    InternSizes, SessionArena, Symbol,
};
pub use memo::{CacheStats, MemoImportStats, MemoSnapshotStats, SemCache};
pub use parser::{parse_cmd, parse_expr, ParseError};
pub use state::{ExtState, Store};
pub use stateset::StateSet;
pub use value::Value;
