//! Runtime values (`PVals` / `LVals` in the paper).
//!
//! Definition 1 models expressions as *total* functions from states to
//! values, so every operation here is total: arithmetic wraps, division by
//! zero yields `0`, out-of-bounds indexing yields the default value, and
//! ill-typed operands coerce through [`Value::as_int`] / [`Value::truthy`].
//! This mirrors the paper's assumption that "expression evaluation is total,
//! such that division-by-zero and other errors cannot occur" (§3.1).
//!
//! Lists are included because the Fig. 6 example (prefix-sum one-time pad)
//! manipulates a secret list `h` with `len`, indexing, `++` and XOR.

use std::fmt;

/// A program or logical value: integer, boolean, or list of values.
///
/// # Examples
///
/// ```
/// use hhl_lang::Value;
/// let v = Value::Int(3).add(&Value::Int(4));
/// assert_eq!(v, Value::Int(7));
/// let l = Value::list([Value::Int(1), Value::Int(2)]);
/// assert_eq!(l.len(), Value::Int(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit signed integer (arithmetic wraps on overflow).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A list of values.
    List(Vec<Value>),
}

impl Default for Value {
    /// The default value is `Int(0)`; total stores map unset variables to it.
    fn default() -> Value {
        Value::Int(0)
    }
}

impl Value {
    /// Convenience constructor for list values.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// The empty list.
    pub fn empty_list() -> Value {
        Value::List(Vec::new())
    }

    /// Coerces to an integer: `Int` as itself, `Bool` as 0/1, `List` as its
    /// length. Keeps every arithmetic operation total.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            Value::Bool(b) => *b as i64,
            Value::List(l) => l.len() as i64,
        }
    }

    /// Coerces to a boolean: `Bool` as itself, `Int` as `!= 0`, `List` as
    /// non-empty.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::List(l) => !l.is_empty(),
        }
    }

    /// Wrapping addition.
    pub fn add(&self, other: &Value) -> Value {
        Value::Int(self.as_int().wrapping_add(other.as_int()))
    }

    /// Wrapping subtraction.
    pub fn sub(&self, other: &Value) -> Value {
        Value::Int(self.as_int().wrapping_sub(other.as_int()))
    }

    /// Wrapping multiplication.
    pub fn mul(&self, other: &Value) -> Value {
        Value::Int(self.as_int().wrapping_mul(other.as_int()))
    }

    /// Total division: division by zero yields `0`.
    pub fn div(&self, other: &Value) -> Value {
        let d = other.as_int();
        Value::Int(if d == 0 {
            0
        } else {
            self.as_int().wrapping_div(d)
        })
    }

    /// Total remainder: modulo by zero yields `0`.
    pub fn rem(&self, other: &Value) -> Value {
        let d = other.as_int();
        Value::Int(if d == 0 {
            0
        } else {
            self.as_int().wrapping_rem(d)
        })
    }

    /// Bitwise XOR on the integer coercions (the `⊕` operator of Fig. 6).
    pub fn xor(&self, other: &Value) -> Value {
        Value::Int(self.as_int() ^ other.as_int())
    }

    /// Integer minimum.
    pub fn min_val(&self, other: &Value) -> Value {
        Value::Int(self.as_int().min(other.as_int()))
    }

    /// Integer maximum (the `max` in Fig. 10's loop guard).
    pub fn max_val(&self, other: &Value) -> Value {
        Value::Int(self.as_int().max(other.as_int()))
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Value {
        Value::Int(self.as_int().wrapping_neg())
    }

    /// Boolean negation (via [`Value::truthy`]).
    pub fn not(&self) -> Value {
        Value::Bool(!self.truthy())
    }

    /// List length (`len` in Fig. 6); non-lists have length 0.
    pub fn len(&self) -> Value {
        match self {
            Value::List(l) => Value::Int(l.len() as i64),
            _ => Value::Int(0),
        }
    }

    /// List concatenation (`++` in Fig. 6). Non-list operands are treated as
    /// singleton lists, keeping the operation total.
    pub fn concat(&self, other: &Value) -> Value {
        let mut l = match self {
            Value::List(l) => l.clone(),
            v => vec![v.clone()],
        };
        match other {
            Value::List(r) => l.extend(r.iter().cloned()),
            v => l.push(v.clone()),
        }
        Value::List(l)
    }

    /// List indexing (`h[i]` in Fig. 6); out of bounds or non-list yields the
    /// default value.
    pub fn index(&self, idx: &Value) -> Value {
        match self {
            Value::List(l) => {
                let i = idx.as_int();
                if i >= 0 && (i as usize) < l.len() {
                    l[i as usize].clone()
                } else {
                    Value::default()
                }
            }
            _ => Value::default(),
        }
    }

    /// Structural equality as a boolean value.
    pub fn eq_val(&self, other: &Value) -> Value {
        Value::Bool(self.same(other))
    }

    /// Structural equality, with `Int`/`Bool` compared via integer coercion
    /// so that `Int(1)` and `Bool(true)` are interchangeable.
    pub fn same(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same(y))
            }
            (Value::List(_), _) | (_, Value::List(_)) => false,
            _ => self.as_int() == other.as_int(),
        }
    }

    /// Total order comparison on integer coercions (lists compare by length
    /// then lexicographically on coercions).
    pub fn cmp_num(&self, other: &Value) -> std::cmp::Ordering {
        match (self, other) {
            (Value::List(a), Value::List(b)) => a.len().cmp(&b.len()).then_with(|| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| x.cmp_num(y))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            _ => self.as_int().cmp(&other.as_int()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_total() {
        assert_eq!(Value::Int(7).div(&Value::Int(0)), Value::Int(0));
        assert_eq!(Value::Int(7).rem(&Value::Int(0)), Value::Int(0));
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn xor_matches_bitwise() {
        assert_eq!(
            Value::Int(0b1010).xor(&Value::Int(0b0110)),
            Value::Int(0b1100)
        );
        // XOR is an involution — the heart of the Fig. 6 one-time pad.
        let (a, k) = (Value::Int(1234), Value::Int(987));
        assert_eq!(a.xor(&k).xor(&k), a);
    }

    #[test]
    fn list_operations() {
        let l = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(l.len(), Value::Int(2));
        assert_eq!(l.index(&Value::Int(1)), Value::Int(2));
        assert_eq!(l.index(&Value::Int(5)), Value::Int(0));
        assert_eq!(l.index(&Value::Int(-1)), Value::Int(0));
        let l2 = l.concat(&Value::list([Value::Int(3)]));
        assert_eq!(
            l2,
            Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_int(), 1);
        assert!(Value::Int(3).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::list([Value::Int(0)]).truthy());
        assert!(!Value::empty_list().truthy());
    }

    #[test]
    fn same_coerces_int_bool() {
        assert!(Value::Int(1).same(&Value::Bool(true)));
        assert!(Value::Int(0).same(&Value::Bool(false)));
        assert!(!Value::Int(1).same(&Value::list([Value::Int(1)])));
    }

    #[test]
    fn min_max() {
        assert_eq!(Value::Int(3).min_val(&Value::Int(5)), Value::Int(3));
        assert_eq!(Value::Int(3).max_val(&Value::Int(5)), Value::Int(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(
            Value::list([Value::Int(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
    }
}
