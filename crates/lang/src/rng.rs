//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds in an offline environment, so it cannot depend on
//! the `rand` crate. Sampling-based components (the entailment checker's
//! subset sampler, the property-test suites) only need reproducible,
//! seedable, statistically-reasonable randomness — not cryptographic
//! strength — which this xoshiro256** generator (seeded via SplitMix64,
//! per Blackman & Vigna's reference initialization) provides.

/// A seedable xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of state are derived with SplitMix64 so that nearby
    /// seeds yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the result is
    /// unbiased for every `n`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        let threshold = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % n;
            }
        }
    }

    /// Uniform draw from the inclusive range `[lo, hi]`. Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// Uniform draw from the inclusive signed range `[lo, hi]`.
    pub fn gen_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        (lo as i128 + self.gen_below(span + 1) as i128) as i64
    }

    /// Uniform draw from `[0, n)` as a `usize` index.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }

    /// Bernoulli draw with probability `num / den`.
    pub fn gen_bool_ratio(&mut self, num: u64, den: u64) -> bool {
        self.gen_below(den) < num
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_i64_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range_inclusive(1, 6);
            assert!((1..=6).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_i64_inclusive(0, 3));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
