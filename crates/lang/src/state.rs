//! Program states and extended states (Definitions 1 and 2).
//!
//! A *program state* is a total function `PVars → PVals`; an *extended state*
//! (Def. 2) pairs a logical store (`LVars → LVals`) with a program store.
//! Totality is modelled by defaulting absent variables to [`Value::default`]
//! and by *normalizing* stores so that explicitly-set default values are
//! erased — two extensionally equal stores are structurally equal.

use std::collections::BTreeMap;
use std::fmt;

use crate::intern::Symbol;
use crate::value::Value;

/// A total variable store: `Symbol → Value`, defaulting to `Value::Int(0)`.
///
/// Stores are normalized (default-valued entries are not stored) so that
/// `Eq`/`Ord`/`Hash` coincide with extensional equality of the total
/// functions they represent.
///
/// # Examples
///
/// ```
/// use hhl_lang::{Store, Value};
/// let mut s = Store::new();
/// assert_eq!(s.get("x"), Value::Int(0)); // total: default everywhere
/// s.set("x", Value::Int(5));
/// assert_eq!(s.get("x"), Value::Int(5));
/// s.set("x", Value::Int(0));
/// assert_eq!(s, Store::new()); // normalization: extensional equality
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Store(BTreeMap<Symbol, Value>);

impl Store {
    /// Creates the store that maps every variable to the default value.
    pub fn new() -> Store {
        Store(BTreeMap::new())
    }

    /// Builds a store from `(name, value)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use hhl_lang::{Store, Value};
    /// let s = Store::from_pairs([("x", Value::Int(1)), ("y", Value::Int(2))]);
    /// assert_eq!(s.get("y"), Value::Int(2));
    /// ```
    pub fn from_pairs<S: Into<Symbol>, I: IntoIterator<Item = (S, Value)>>(pairs: I) -> Store {
        let mut s = Store::new();
        for (k, v) in pairs {
            s.set(k, v);
        }
        s
    }

    /// Looks up a variable (total: absent variables yield the default value).
    pub fn get<S: Into<Symbol>>(&self, var: S) -> Value {
        self.0.get(&var.into()).cloned().unwrap_or_default()
    }

    /// Updates a variable in place, maintaining normalization.
    pub fn set<S: Into<Symbol>>(&mut self, var: S, value: Value) {
        let var = var.into();
        if value == Value::default() {
            self.0.remove(&var);
        } else {
            self.0.insert(var, value);
        }
    }

    /// Functional update: returns `self[var ↦ value]` (the `σ[x ↦ v]` of
    /// Fig. 9).
    pub fn with<S: Into<Symbol>>(&self, var: S, value: Value) -> Store {
        let mut s = self.clone();
        s.set(var, value);
        s
    }

    /// Iterates over the explicitly-set (non-default) entries.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> + '_ {
        self.0.iter().map(|(k, v)| (*k, v))
    }

    /// The set of variables with non-default values.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.0.keys().copied()
    }

    /// Number of non-default entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff every variable maps to the default value.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True iff `self` and `other` agree on every variable in `vars`.
    pub fn agrees_on<I: IntoIterator<Item = Symbol>>(&self, other: &Store, vars: I) -> bool {
        vars.into_iter().all(|v| self.get(v) == other.get(v))
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}↦{v}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<Symbol>> FromIterator<(S, Value)> for Store {
    fn from_iter<I: IntoIterator<Item = (S, Value)>>(iter: I) -> Store {
        Store::from_pairs(iter)
    }
}

/// An extended state `φ = (φ_L, φ_P)` (Def. 2): a logical store paired with a
/// program store.
///
/// Logical variables cannot be modified by program execution, which is what
/// lets hyper-assertions use them to tag and track executions (§2.2).
///
/// # Examples
///
/// ```
/// use hhl_lang::{ExtState, Store, Value};
/// let phi = ExtState::new(
///     Store::from_pairs([("t", Value::Int(1))]),
///     Store::from_pairs([("x", Value::Int(5))]),
/// );
/// assert_eq!(phi.logical.get("t"), Value::Int(1));
/// assert_eq!(phi.program.get("x"), Value::Int(5));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtState {
    /// The logical store `φ_L`.
    pub logical: Store,
    /// The program store `φ_P`.
    pub program: Store,
}

impl ExtState {
    /// Creates an extended state from its two components.
    pub fn new(logical: Store, program: Store) -> ExtState {
        ExtState { logical, program }
    }

    /// An extended state with empty logical store and the given program store.
    pub fn from_program(program: Store) -> ExtState {
        ExtState {
            logical: Store::new(),
            program,
        }
    }

    /// Functional update of a *program* variable.
    pub fn with_program<S: Into<Symbol>>(&self, var: S, value: Value) -> ExtState {
        ExtState {
            logical: self.logical.clone(),
            program: self.program.with(var, value),
        }
    }

    /// Functional update of a *logical* variable (the `φ[u ↦ v]` used in
    /// Prop. 8 and the `LUpdate` rule).
    pub fn with_logical<S: Into<Symbol>>(&self, var: S, value: Value) -> ExtState {
        ExtState {
            logical: self.logical.with(var, value),
            program: self.program.clone(),
        }
    }
}

impl fmt::Display for ExtState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(L:{}, P:{})", self.logical, self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_total() {
        let s = Store::new();
        assert_eq!(s.get("anything"), Value::Int(0));
    }

    #[test]
    fn normalization_gives_extensional_equality() {
        let mut a = Store::new();
        a.set("x", Value::Int(0));
        a.set("y", Value::Int(0));
        assert_eq!(a, Store::new());
        assert!(a.is_empty());

        let b = Store::from_pairs([("x", Value::Int(1))]).with("x", Value::Int(0));
        assert_eq!(b, Store::new());
    }

    #[test]
    fn with_is_functional() {
        let s = Store::from_pairs([("x", Value::Int(1))]);
        let s2 = s.with("x", Value::Int(2));
        assert_eq!(s.get("x"), Value::Int(1));
        assert_eq!(s2.get("x"), Value::Int(2));
    }

    #[test]
    fn agrees_on_subset() {
        let a = Store::from_pairs([("x", Value::Int(1)), ("y", Value::Int(2))]);
        let b = Store::from_pairs([("x", Value::Int(1)), ("y", Value::Int(3))]);
        assert!(a.agrees_on(&b, [Symbol::new("x")]));
        assert!(!a.agrees_on(&b, [Symbol::new("y")]));
    }

    #[test]
    fn ext_state_updates_are_independent() {
        let phi = ExtState::default();
        let p = phi.with_program("x", Value::Int(3));
        let l = phi.with_logical("x", Value::Int(4));
        assert_eq!(p.logical, Store::new());
        assert_eq!(l.program, Store::new());
        assert_eq!(p.program.get("x"), Value::Int(3));
        assert_eq!(l.logical.get("x"), Value::Int(4));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ExtState::default()).is_empty());
        assert_eq!(Store::new().to_string(), "{}");
    }
}
