//! Executable big-step semantics (Fig. 9).
//!
//! The paper's semantics `⟨C, σ⟩ → σ'` relates a command and an initial
//! program state to each reachable final state. Two of its constructs are
//! infinitary:
//!
//! * `x := nonDet()` may pick *any* value — we finitize it with
//!   [`ExecConfig::havoc_domain`], a user-chosen candidate set (see
//!   DESIGN.md's substitution table);
//! * `C*` may iterate any finite number of times — we compute the reachable
//!   set by a breadth-first fixpoint with a *visited set*, so on finite state
//!   spaces the result is **exact**; [`ExecConfig::loop_fuel`] only bounds
//!   divergence on infinite spaces (e.g. a havoc inside an unguarded star).
//!
//! `exec(C, σ)` returns the set `{σ' | ⟨C, σ⟩ → σ'}` of final program states.

use std::collections::BTreeSet;

use crate::cmd::Cmd;
use crate::state::Store;
use crate::value::Value;

/// Configuration of the executable semantics: the havoc candidate domain and
/// the iteration fuel for `C*`.
///
/// # Examples
///
/// ```
/// use hhl_lang::{Cmd, ExecConfig, Expr, Store, Value};
/// let cfg = ExecConfig::int_range(0, 9);
/// let c = Cmd::rand_int_bounded("x", Expr::int(0), Expr::int(9));
/// let finals = cfg.exec(&c, &Store::new());
/// assert_eq!(finals.len(), 10); // one final state per value in [0, 9]
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Candidate values for `x := nonDet()`.
    pub havoc_domain: Vec<Value>,
    /// Maximum number of `C*` unrollings explored beyond the fixpoint check.
    pub loop_fuel: u32,
}

impl Default for ExecConfig {
    /// A small default: havoc over `-2..=2`, fuel 32.
    fn default() -> ExecConfig {
        ExecConfig::int_range(-2, 2)
    }
}

impl ExecConfig {
    /// Havoc domain `lo..=hi` (integers), fuel 32.
    pub fn int_range(lo: i64, hi: i64) -> ExecConfig {
        ExecConfig {
            havoc_domain: (lo..=hi).map(Value::Int).collect(),
            loop_fuel: 32,
        }
    }

    /// Havoc over an explicit value list, fuel 32.
    pub fn with_domain<I: IntoIterator<Item = Value>>(domain: I) -> ExecConfig {
        ExecConfig {
            havoc_domain: domain.into_iter().collect(),
            loop_fuel: 32,
        }
    }

    /// Replaces the loop fuel.
    pub fn fuel(mut self, fuel: u32) -> ExecConfig {
        self.loop_fuel = fuel;
        self
    }

    /// Computes `{σ' | ⟨C, σ⟩ → σ'}` under this finitization.
    pub fn exec(&self, cmd: &Cmd, sigma: &Store) -> BTreeSet<Store> {
        match cmd {
            Cmd::Skip => std::iter::once(sigma.clone()).collect(),
            Cmd::Assign(x, e) => std::iter::once(sigma.with(*x, e.eval(sigma))).collect(),
            Cmd::Havoc(x) => self
                .havoc_domain
                .iter()
                .map(|v| sigma.with(*x, v.clone()))
                .collect(),
            Cmd::Assume(b) => {
                if b.holds(sigma) {
                    std::iter::once(sigma.clone()).collect()
                } else {
                    BTreeSet::new()
                }
            }
            Cmd::Seq(c1, c2) => {
                let mid = self.exec(c1, sigma);
                let mut out = BTreeSet::new();
                for m in &mid {
                    out.extend(self.exec(c2, m));
                }
                out
            }
            Cmd::Choice(c1, c2) => {
                let mut out = self.exec(c1, sigma);
                out.extend(self.exec(c2, sigma));
                out
            }
            Cmd::Star(c) => {
                // Reachability fixpoint: states reachable by 0..n iterations.
                let mut reached: BTreeSet<Store> = std::iter::once(sigma.clone()).collect();
                let mut frontier = reached.clone();
                for _ in 0..self.loop_fuel {
                    let mut next = BTreeSet::new();
                    for s in &frontier {
                        for t in self.exec(c, s) {
                            if !reached.contains(&t) {
                                next.insert(t);
                            }
                        }
                    }
                    if next.is_empty() {
                        break; // exact fixpoint reached
                    }
                    reached.extend(next.iter().cloned());
                    frontier = next;
                }
                reached
            }
        }
    }

    /// Computes the states reachable by exactly `n` iterations' worth of the
    /// unrolled `C^n` — a helper for the Lemma 1(7) tests and the `Iter`
    /// rule checker.
    pub fn exec_pow(&self, cmd: &Cmd, n: u32, sigma: &Store) -> BTreeSet<Store> {
        self.exec(&cmd.pow(n), sigma)
    }

    /// True iff `⟨C, σ⟩` has at least one terminating execution under this
    /// finitization — the side condition added by terminating hyper-triples
    /// (Def. 24, App. E).
    pub fn has_terminating_run(&self, cmd: &Cmd, sigma: &Store) -> bool {
        !self.exec(cmd, sigma).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn s0() -> Store {
        Store::new()
    }

    #[test]
    fn skip_is_identity() {
        let cfg = ExecConfig::default();
        let out = cfg.exec(&Cmd::Skip, &s0());
        assert_eq!(out.len(), 1);
        assert!(out.contains(&s0()));
    }

    #[test]
    fn assign_updates() {
        let cfg = ExecConfig::default();
        let out = cfg.exec(&Cmd::assign("x", Expr::int(7)), &s0());
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get("x"), Value::Int(7));
    }

    #[test]
    fn havoc_enumerates_domain() {
        let cfg = ExecConfig::int_range(0, 4);
        let out = cfg.exec(&Cmd::havoc("x"), &s0());
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn assume_filters() {
        let cfg = ExecConfig::default();
        let sat = cfg.exec(&Cmd::assume(Expr::bool(true)), &s0());
        assert_eq!(sat.len(), 1);
        let unsat = cfg.exec(&Cmd::assume(Expr::bool(false)), &s0());
        assert!(unsat.is_empty());
    }

    #[test]
    fn rand_int_bounded_matches_paper_example() {
        // C0 = x := randIntBounded(0, 9): P1 — final x in [0, 9];
        // P2 — every value in [0, 9] occurs.
        let cfg = ExecConfig::int_range(-3, 12);
        let c0 = Cmd::rand_int_bounded("x", Expr::int(0), Expr::int(9));
        let out = cfg.exec(&c0, &s0());
        assert_eq!(out.len(), 10);
        for st in &out {
            let x = st.get("x").as_int();
            assert!((0..=9).contains(&x));
        }
        for n in 0..=9 {
            assert!(out.iter().any(|st| st.get("x").as_int() == n));
        }
    }

    #[test]
    fn choice_unions_branches() {
        let cfg = ExecConfig::default();
        let c = Cmd::choice(
            Cmd::assign("x", Expr::int(1)),
            Cmd::assign("x", Expr::int(2)),
        );
        let out = cfg.exec(&c, &s0());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn while_loop_is_exact_on_finite_space() {
        // i := 0; while (i < 5) { i := i + 1 }
        let c = Cmd::seq(
            Cmd::assign("i", Expr::int(0)),
            Cmd::while_loop(
                Expr::var("i").lt(Expr::int(5)),
                Cmd::assign("i", Expr::var("i") + Expr::int(1)),
            ),
        );
        let cfg = ExecConfig::default().fuel(100);
        let out = cfg.exec(&c, &s0());
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get("i"), Value::Int(5));
    }

    #[test]
    fn star_includes_zero_iterations() {
        let c = Cmd::star(Cmd::assign("x", Expr::var("x") + Expr::int(1)));
        let cfg = ExecConfig::default().fuel(3);
        let out = cfg.exec(&c, &s0());
        // 0, 1, 2, 3 increments under fuel 3
        assert_eq!(out.len(), 4);
        assert!(out.iter().any(|s| s.get("x") == Value::Int(0)));
    }

    #[test]
    fn star_reaches_fixpoint_early() {
        // x := 1 is idempotent: fixpoint after one round regardless of fuel.
        let c = Cmd::star(Cmd::assign("x", Expr::int(1)));
        let cfg = ExecConfig::default().fuel(1_000_000);
        let out = cfg.exec(&c, &s0());
        assert_eq!(out.len(), 2); // {x↦0 (zero iters), x↦1}
    }

    #[test]
    fn nontermination_drops_states() {
        // while (true) { skip } has no finite executions: empty result,
        // matching the paper's partial-correctness semantics.
        let c = Cmd::while_loop(Expr::bool(true), Cmd::Skip);
        let cfg = ExecConfig::default().fuel(10);
        assert!(cfg.exec(&c, &s0()).is_empty());
        assert!(!cfg.has_terminating_run(&c, &s0()));
    }

    #[test]
    fn exec_pow_matches_unrolling() {
        let c = Cmd::assign("x", Expr::var("x") + Expr::int(1));
        let cfg = ExecConfig::default();
        let out = cfg.exec_pow(&c, 4, &s0());
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get("x"), Value::Int(4));
    }

    #[test]
    fn c4_leak_program_semantics() {
        // C4 = y := nonDet(); assume y <= 9; l := h + y  (§2.3)
        let c4 = Cmd::seq_all([
            Cmd::havoc("y"),
            Cmd::assume(Expr::var("y").le(Expr::int(9))),
            Cmd::assign("l", Expr::var("h") + Expr::var("y")),
        ]);
        let cfg = ExecConfig::int_range(5, 12);
        let init = Store::from_pairs([("h", Value::Int(11))]);
        let out = cfg.exec(&c4, &init);
        // y ranges over 5..=9 (10..12 filtered), so l = h + y over 16..=20.
        assert_eq!(out.len(), 5);
        for st in &out {
            let l = st.get("l").as_int();
            assert!((16..=20).contains(&l));
            // Observing l = 20 implies h >= 11: the information leak.
        }
    }
}
