//! Sets of extended states — the objects hyper-assertions talk about.
//!
//! Hyper Hoare Logic's central move is lifting pre/postconditions from single
//! states to *sets* of states (Def. 3). [`StateSet`] is the canonical,
//! deterministic representation used by the semantics (Def. 4), the validity
//! checker (Def. 5), and the assertion evaluator (Def. 12).

use std::collections::BTreeSet;
use std::fmt;

use crate::state::ExtState;

/// A finite set of extended states, canonically ordered.
///
/// # Examples
///
/// ```
/// use hhl_lang::{ExtState, StateSet, Store, Value};
/// let phi = ExtState::from_program(Store::from_pairs([("x", Value::Int(1))]));
/// let s = StateSet::singleton(phi.clone());
/// assert!(s.contains(&phi));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateSet(BTreeSet<ExtState>);

impl StateSet {
    /// The empty set of states (satisfies the `emp` hyper-assertion).
    pub fn new() -> StateSet {
        StateSet(BTreeSet::new())
    }

    /// The singleton set `{φ}`.
    pub fn singleton(phi: ExtState) -> StateSet {
        let mut s = BTreeSet::new();
        s.insert(phi);
        StateSet(s)
    }

    /// Inserts a state; returns `true` if it was not already present.
    pub fn insert(&mut self, phi: ExtState) -> bool {
        self.0.insert(phi)
    }

    /// Membership test.
    pub fn contains(&self, phi: &ExtState) -> bool {
        self.0.contains(phi)
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the states in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &ExtState> + '_ {
        self.0.iter()
    }

    /// Set union `self ∪ other`.
    pub fn union(&self, other: &StateSet) -> StateSet {
        StateSet(self.0.union(&other.0).cloned().collect())
    }

    /// Set intersection `self ∩ other`.
    pub fn intersection(&self, other: &StateSet) -> StateSet {
        StateSet(self.0.intersection(&other.0).cloned().collect())
    }

    /// Subset test `self ⊆ other`.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Keeps only the states satisfying `pred` — the `{φ | φ ∈ S ∧ b(φ_P)}`
    /// comprehension of the `Assume` core rule.
    pub fn filter<F: Fn(&ExtState) -> bool>(&self, pred: F) -> StateSet {
        StateSet(self.0.iter().filter(|p| pred(p)).cloned().collect())
    }

    /// Applies a state transformer pointwise and unions the images — the
    /// shape of the `Assign`/`Havoc` core-rule comprehensions.
    pub fn flat_map<I, F>(&self, f: F) -> StateSet
    where
        I: IntoIterator<Item = ExtState>,
        F: Fn(&ExtState) -> I,
    {
        let mut out = BTreeSet::new();
        for phi in &self.0 {
            out.extend(f(phi));
        }
        StateSet(out)
    }

    /// Enumerates all subsets of `self` with at most `max_len` elements
    /// (including the empty set). Exponential — intended for the small
    /// finite universes used by the entailment and validity checkers.
    pub fn subsets_up_to(&self, max_len: usize) -> Vec<StateSet> {
        let elems: Vec<&ExtState> = self.0.iter().collect();
        let mut out = vec![StateSet::new()];
        for e in elems {
            let mut extended = Vec::new();
            for s in &out {
                if s.len() < max_len {
                    let mut s2 = s.clone();
                    s2.insert((*e).clone());
                    extended.push(s2);
                }
            }
            out.extend(extended);
        }
        out
    }

    /// Enumerates all `(S1, S2)` with `S1 ∪ S2 = self` (Def. 6's splittings;
    /// `S1`, `S2` may overlap). There are `3^|self|` such pairs: each element
    /// goes left, right, or both.
    pub fn splittings(&self) -> Vec<(StateSet, StateSet)> {
        let elems: Vec<&ExtState> = self.0.iter().collect();
        let mut out = vec![(StateSet::new(), StateSet::new())];
        for e in elems {
            let mut next = Vec::with_capacity(out.len() * 3);
            for (l, r) in &out {
                let mut l1 = l.clone();
                l1.insert((*e).clone());
                next.push((l1.clone(), r.clone()));
                let mut r1 = r.clone();
                r1.insert((*e).clone());
                next.push((l.clone(), r1.clone()));
                let mut l2 = l.clone();
                l2.insert((*e).clone());
                next.push((l2, r1));
            }
            out = next;
        }
        out
    }

    /// Enumerates all ways to partition `self` into `k` (possibly empty,
    /// possibly overlapping-free) blocks whose union is `self`, assigning
    /// each element to exactly one block. Used to evaluate the bounded
    /// `⨂ₙ Iₙ` operator (Def. 7) where overlap never adds satisfying splits
    /// for the invariant families the paper uses; the exact (overlapping)
    /// variant is exposed via [`StateSet::splittings`] for `k = 2`.
    pub fn partitions_into(&self, k: usize) -> Vec<Vec<StateSet>> {
        let elems: Vec<&ExtState> = self.0.iter().collect();
        let mut out: Vec<Vec<StateSet>> = vec![vec![StateSet::new(); k]];
        for e in elems {
            let mut next = Vec::with_capacity(out.len() * k);
            for blocks in &out {
                for (i, _) in blocks.iter().enumerate().take(k) {
                    let mut b2 = blocks.clone();
                    b2[i].insert((*e).clone());
                    next.push(b2);
                }
            }
            out = next;
        }
        out
    }
}

impl FromIterator<ExtState> for StateSet {
    fn from_iter<I: IntoIterator<Item = ExtState>>(iter: I) -> StateSet {
        StateSet(iter.into_iter().collect())
    }
}

impl Extend<ExtState> for StateSet {
    fn extend<I: IntoIterator<Item = ExtState>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for StateSet {
    type Item = ExtState;
    type IntoIter = std::collections::btree_set::IntoIter<ExtState>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = &'a ExtState;
    type IntoIter = std::collections::btree_set::Iter<'a, ExtState>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, phi) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{phi}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Store;
    use crate::value::Value;

    fn st(x: i64) -> ExtState {
        ExtState::from_program(Store::from_pairs([("x", Value::Int(x))]))
    }

    #[test]
    fn union_and_subset() {
        let a: StateSet = [st(1), st(2)].into_iter().collect();
        let b: StateSet = [st(2), st(3)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert_eq!(a.intersection(&b), StateSet::singleton(st(2)));
    }

    #[test]
    fn subsets_enumeration_counts() {
        let s: StateSet = [st(1), st(2), st(3)].into_iter().collect();
        assert_eq!(s.subsets_up_to(3).len(), 8);
        assert_eq!(s.subsets_up_to(1).len(), 4); // {}, {1}, {2}, {3}
        assert_eq!(s.subsets_up_to(0).len(), 1);
    }

    #[test]
    fn splittings_cover_and_count() {
        let s: StateSet = [st(1), st(2)].into_iter().collect();
        let sp = s.splittings();
        assert_eq!(sp.len(), 9); // 3^2
        for (l, r) in &sp {
            assert_eq!(l.union(r), s);
        }
    }

    #[test]
    fn partitions_cover_disjointly() {
        let s: StateSet = [st(1), st(2)].into_iter().collect();
        let ps = s.partitions_into(3);
        assert_eq!(ps.len(), 9); // 3^2
        for blocks in &ps {
            let mut u = StateSet::new();
            let mut total = 0;
            for b in blocks {
                total += b.len();
                u = u.union(b);
            }
            assert_eq!(u, s);
            assert_eq!(total, s.len());
        }
    }

    #[test]
    fn filter_matches_predicate() {
        let s: StateSet = [st(1), st(2), st(3)].into_iter().collect();
        let f = s.filter(|p| p.program.get("x").as_int() >= 2);
        assert_eq!(f.len(), 2);
        assert!(!f.contains(&st(1)));
    }

    #[test]
    fn flat_map_unions_images() {
        let s: StateSet = [st(1), st(2)].into_iter().collect();
        let out = s.flat_map(|p| {
            let v = p.program.get("x").as_int();
            vec![st(v), st(v + 10)]
        });
        assert_eq!(out.len(), 4);
        assert!(out.contains(&st(11)));
    }
}
