//! Stable, process-independent fingerprints of language objects.
//!
//! The persistent verdict store of the batch driver keys cached verdicts by
//! a fingerprint of everything that can influence a verdict: the program,
//! the triple, and the finite model. Those fingerprints must be *stable* —
//! equal across processes, runs and machines — which rules out both
//! `std::hash` (`DefaultHasher` keys are not guaranteed across releases)
//! and anything derived from interning ids ([`crate::CmdId`] /
//! [`crate::ExprId`] are assigned in process-local first-seen order).
//!
//! [`StableHasher`] is a 128-bit FNV-1a over an explicit canonical byte
//! encoding: every variant writes a distinguishing tag, every string is
//! length-prefixed, stores are serialized in *name* order (never in
//! [`crate::Symbol`] id order, which is process-local), and sets hash as
//! the sorted multiset of their members' sub-hashes. Whitespace, comments
//! and other concrete-syntax artefacts never reach the hasher — two
//! sources that parse to the same tree fingerprint identically.
//!
//! [`fp_cmd`] and [`fp_expr`] memoize per hash-consed term id, so the
//! repeated subtrees of a batch corpus (shared prefixes, loop bodies) are
//! fingerprinted once per process, and a whole-spec fingerprint costs one
//! table lookup per distinct subtree.
//!
//! Fingerprints are 128 bits to make accidental collisions irrelevant in
//! practice; they are still hashes, so components that must *never* alias
//! (the in-memory memo keys of [`crate::SemCache`]) use exact interning
//! instead — see `memo.rs`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::cmd::Cmd;
use crate::exec::ExecConfig;
use crate::expr::{Expr, UnOp};
use crate::intern::{intern_cmd, intern_expr, CmdId, ExprId};
use crate::state::{ExtState, Store};
use crate::stateset::StateSet;
use crate::value::Value;

/// A 128-bit stable fingerprint.
///
/// Displays as (and parses from) 32 lowercase hex digits, which is also the
/// on-disk file-name form used by the persistent verdict store.
///
/// # Examples
///
/// ```
/// use hhl_lang::{fp_cmd, parse_cmd, Fingerprint};
/// let a = fp_cmd(&parse_cmd("x := x + 1").unwrap());
/// let b = fp_cmd(&parse_cmd("x  :=  x + 1 // comment").unwrap());
/// let c = fp_cmd(&parse_cmd("x := x + 2").unwrap());
/// assert_eq!(a, b); // concrete syntax never reaches the hash
/// assert_ne!(a, c);
/// assert_eq!(Fingerprint::from_hex(&a.to_string()), Some(a));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental 128-bit FNV-1a hasher with an explicit, version-stable
/// byte encoding (see the module docs).
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Hashes raw bytes. Prefer the typed writers, which add framing.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Hashes one byte (variant tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Hashes a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `u128` (little-endian) — used to fold sub-fingerprints in.
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `usize` as a `u64`, so 32- and 64-bit builds agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes a length-prefixed string (no terminator ambiguity).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Folds a previously computed [`Fingerprint`] in (sub-tree hashing).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_u128(fp.0);
    }

    /// The fingerprint of everything written so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Hashes a symbol list by *name*, in order (symbol ids are process-local
/// and must never reach a stable hash). Used for the meta-variable scopes
/// of sharded proof obligations.
pub fn fp_symbols(h: &mut StableHasher, symbols: &[crate::Symbol]) {
    h.write_usize(symbols.len());
    for s in symbols {
        h.write_str(&s.as_str());
    }
}

/// Hashes a [`Value`] (tag + payload; lists recurse).
pub fn fp_value(h: &mut StableHasher, v: &Value) {
    match v {
        Value::Int(i) => {
            h.write_u8(0);
            h.write_i64(*i);
        }
        Value::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        Value::List(items) => {
            h.write_u8(2);
            h.write_usize(items.len());
            for item in items {
                fp_value(h, item);
            }
        }
    }
}

/// Hashes a [`Store`] in *name* order (symbol ids are process-local, so the
/// store's own iteration order must not reach the hash).
pub fn fp_store(h: &mut StableHasher, s: &Store) {
    let mut entries: Vec<(String, &Value)> = s.iter().map(|(k, v)| (k.as_str(), v)).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    h.write_usize(entries.len());
    for (name, value) in entries {
        h.write_str(&name);
        fp_value(h, value);
    }
}

/// Hashes an [`ExtState`] (logical store, then program store).
pub fn fp_ext_state(h: &mut StableHasher, phi: &ExtState) {
    fp_store(h, &phi.logical);
    fp_store(h, &phi.program);
}

/// Hashes a [`StateSet`] as the sorted multiset of its members' sub-hashes
/// (the set's own order is `Symbol`-id-dependent and thus process-local).
pub fn fp_state_set(h: &mut StableHasher, s: &StateSet) {
    let mut members: Vec<u128> = s
        .iter()
        .map(|phi| {
            let mut sub = StableHasher::new();
            fp_ext_state(&mut sub, phi);
            sub.finish().0
        })
        .collect();
    members.sort_unstable();
    h.write_usize(members.len());
    for m in members {
        h.write_u128(m);
    }
}

/// Hashes an [`ExecConfig`] finitization (havoc domain in order + fuel).
pub fn fp_exec(h: &mut StableHasher, cfg: &ExecConfig) {
    h.write_usize(cfg.havoc_domain.len());
    for v in &cfg.havoc_domain {
        fp_value(h, v);
    }
    h.write_u32(cfg.loop_fuel);
}

fn un_op_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::Len => "len",
    }
}

fn expr_fps() -> &'static Mutex<HashMap<ExprId, u128>> {
    static TABLE: OnceLock<Mutex<HashMap<ExprId, u128>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cmd_fps() -> &'static Mutex<HashMap<CmdId, u128>> {
    static TABLE: OnceLock<Mutex<HashMap<CmdId, u128>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The stable fingerprint of an expression tree.
///
/// Structural and canonical: equal trees fingerprint equally in every
/// process; any mutated literal, variable or operator changes the result.
/// Memoized per hash-consed [`ExprId`], so repeated subtrees cost one table
/// lookup.
pub fn fp_expr(e: &Expr) -> Fingerprint {
    let id = intern_expr(e);
    if let Some(&fp) = expr_fps().lock().expect("expr fp table poisoned").get(&id) {
        return Fingerprint(fp);
    }
    let mut h = StableHasher::new();
    match e {
        Expr::Const(v) => {
            h.write_u8(0);
            fp_value(&mut h, v);
        }
        Expr::Var(x) => {
            h.write_u8(1);
            h.write_str(&x.as_str());
        }
        Expr::LVar(x) => {
            h.write_u8(2);
            h.write_str(&x.as_str());
        }
        Expr::Un(op, a) => {
            h.write_u8(3);
            h.write_str(un_op_name(*op));
            h.write_u128(fp_expr(a).0);
        }
        Expr::Bin(op, a, b) => {
            h.write_u8(4);
            // `token()` is unique per operator (Min/Max included), and a
            // name survives enum reorderings where a discriminant does not.
            h.write_str(op.token());
            h.write_u128(fp_expr(a).0);
            h.write_u128(fp_expr(b).0);
        }
    }
    let fp = h.finish();
    expr_fps()
        .lock()
        .expect("expr fp table poisoned")
        .insert(id, fp.0);
    fp
}

/// The stable fingerprint of a command tree.
///
/// Structural and canonical (see [`fp_expr`]); memoized per hash-consed
/// [`CmdId`], so a corpus sharing program prefixes fingerprints each
/// distinct subtree once.
///
/// # Examples
///
/// ```
/// use hhl_lang::{fp_cmd, parse_cmd};
/// let a = parse_cmd("while (i < n) { i := i + 1 }").unwrap();
/// let b = parse_cmd("while (i < n) { i := i + 2 }").unwrap();
/// assert_ne!(fp_cmd(&a), fp_cmd(&b));
/// ```
pub fn fp_cmd(c: &Cmd) -> Fingerprint {
    let id = intern_cmd(c);
    if let Some(&fp) = cmd_fps().lock().expect("cmd fp table poisoned").get(&id) {
        return Fingerprint(fp);
    }
    let mut h = StableHasher::new();
    match c {
        Cmd::Skip => h.write_u8(0),
        Cmd::Assign(x, e) => {
            h.write_u8(1);
            h.write_str(&x.as_str());
            h.write_u128(fp_expr(e).0);
        }
        Cmd::Havoc(x) => {
            h.write_u8(2);
            h.write_str(&x.as_str());
        }
        Cmd::Assume(b) => {
            h.write_u8(3);
            h.write_u128(fp_expr(b).0);
        }
        Cmd::Seq(a, b) => {
            h.write_u8(4);
            h.write_u128(fp_cmd(a).0);
            h.write_u128(fp_cmd(b).0);
        }
        Cmd::Choice(a, b) => {
            h.write_u8(5);
            h.write_u128(fp_cmd(a).0);
            h.write_u128(fp_cmd(b).0);
        }
        Cmd::Star(a) => {
            h.write_u8(6);
            h.write_u128(fp_cmd(a).0);
        }
    }
    let fp = h.finish();
    cmd_fps()
        .lock()
        .expect("cmd fp table poisoned")
        .insert(id, fp.0);
    fp
}

/// The stable fingerprint of an already-interned command.
///
/// `None` only for ids never produced by [`intern_cmd`] in this process.
/// Obligation shards hold interned [`CmdId`] trees and fingerprint through
/// this lookup, so repeated shard fingerprints cost one table hit.
pub fn fp_cmd_id(id: CmdId) -> Option<Fingerprint> {
    if let Some(&fp) = cmd_fps().lock().expect("cmd fp table poisoned").get(&id) {
        return Some(Fingerprint(fp));
    }
    crate::intern::cmd_of(id).map(|cmd| fp_cmd(&cmd))
}

/// The stable fingerprint of an already-interned expression (see
/// [`fp_cmd_id`]).
pub fn fp_expr_id(id: ExprId) -> Option<Fingerprint> {
    if let Some(&fp) = expr_fps().lock().expect("expr fp table poisoned").get(&id) {
        return Some(Fingerprint(fp));
    }
    crate::intern::expr_of(id).map(|e| fp_expr(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cmd;

    #[test]
    fn fingerprint_hex_roundtrips() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        assert_eq!(fp.to_string().len(), 32);
        assert_eq!(Fingerprint::from_hex(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn hasher_is_deterministic_and_framed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        // Length prefixes keep ("ab","c") and ("a","bc") apart.
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_str("ab");
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn cmd_fingerprints_ignore_concrete_syntax() {
        let a = parse_cmd("x := 1;  y := x + 2").unwrap();
        let b = parse_cmd("x := 1; y := x + 2 // note").unwrap();
        assert_eq!(fp_cmd(&a), fp_cmd(&b));
    }

    #[test]
    fn cmd_fingerprints_are_sensitive() {
        let base = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").unwrap();
        for mutated in [
            "if (h > 1) { l := 1 } else { l := 0 }",
            "if (h >= 0) { l := 1 } else { l := 0 }",
            "if (h > 0) { l := 2 } else { l := 0 }",
            "if (h > 0) { l := 1 } else { m := 0 }",
            "if (h > 0) { l := 1 } else { l := 0 }; skip",
        ] {
            assert_ne!(
                fp_cmd(&base),
                fp_cmd(&parse_cmd(mutated).unwrap()),
                "{mutated} must not alias the base program"
            );
        }
    }

    #[test]
    fn seq_nesting_is_distinguished() {
        // seq_all right-nests; pow left-nests. Structurally different trees
        // must not alias even though they print alike.
        let step = Cmd::assign("x", Expr::var("x") + Expr::int(1));
        let left = Cmd::seq(Cmd::seq(step.clone(), step.clone()), step.clone());
        let right = Cmd::seq(step.clone(), Cmd::seq(step.clone(), step));
        assert_ne!(fp_cmd(&left), fp_cmd(&right));
    }

    #[test]
    fn store_hash_is_name_ordered_and_set_hash_is_order_free() {
        let s1 = Store::from_pairs([("a", Value::Int(1)), ("b", Value::Int(2))]);
        let s2 = Store::from_pairs([("b", Value::Int(2)), ("a", Value::Int(1))]);
        let mut h1 = StableHasher::new();
        fp_store(&mut h1, &s1);
        let mut h2 = StableHasher::new();
        fp_store(&mut h2, &s2);
        assert_eq!(h1.finish(), h2.finish());

        let x = ExtState::from_program(Store::from_pairs([("x", Value::Int(1))]));
        let y = ExtState::from_program(Store::from_pairs([("x", Value::Int(2))]));
        let ab: StateSet = [x.clone(), y.clone()].into_iter().collect();
        let ba: StateSet = [y, x].into_iter().collect();
        let mut h1 = StableHasher::new();
        fp_state_set(&mut h1, &ab);
        let mut h2 = StableHasher::new();
        fp_state_set(&mut h2, &ba);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn interned_ids_fingerprint_like_their_terms() {
        let cmd = parse_cmd("x := x + 1; y := nonDet()").unwrap();
        let id = crate::intern::intern_cmd(&cmd);
        assert_eq!(fp_cmd_id(id), Some(fp_cmd(&cmd)));
        let e = Expr::var("x") + Expr::int(3);
        let eid = crate::intern::intern_expr(&e);
        assert_eq!(fp_expr_id(eid), Some(fp_expr(&e)));
    }

    #[test]
    fn symbol_lists_hash_by_name_and_order() {
        use crate::Symbol;
        let mut a = StableHasher::new();
        fp_symbols(&mut a, &[Symbol::new("y"), Symbol::new("v")]);
        let mut b = StableHasher::new();
        fp_symbols(&mut b, &[Symbol::new("v"), Symbol::new("y")]);
        assert_ne!(a.finish(), b.finish(), "scope order is significant");
        let mut c = StableHasher::new();
        fp_symbols(&mut c, &[Symbol::new("y"), Symbol::new("v")]);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn exec_fingerprint_distinguishes_domain_and_fuel() {
        let mut base = StableHasher::new();
        fp_exec(&mut base, &ExecConfig::int_range(0, 2));
        let mut wider = StableHasher::new();
        fp_exec(&mut wider, &ExecConfig::int_range(0, 3));
        let mut fueled = StableHasher::new();
        fp_exec(&mut fueled, &ExecConfig::int_range(0, 2).fuel(7));
        assert_ne!(base.finish(), wider.finish());
        assert_ne!(base.finish(), fueled.finish());
    }
}
