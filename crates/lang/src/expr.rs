//! Program expressions and state predicates.
//!
//! Definition 1 models expressions `e` as total functions `PStates → PVals`
//! and predicates `b` as total functions `PStates → Bool`. We realize both as
//! one first-order AST evaluated over stores: a boolean-valued [`Expr`] *is*
//! a predicate. Unlike opaque Rust closures, the AST supports substitution,
//! free-variable analysis, pretty-printing and parsing — all needed by the
//! syntactic rules of §4.
//!
//! *State expressions* (footnote 8 of the paper) may additionally mention
//! logical variables; [`Expr::LVar`] covers this, and [`Expr::eval`] over a
//! plain program store treats logical variables as defaults while
//! [`Expr::eval_ext`] evaluates over a full extended state.

use std::fmt;

use crate::intern::Symbol;
use crate::state::{ExtState, Store};
use crate::value::Value;

/// Binary operators available in program expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Total division (x/0 = 0).
    Div,
    /// Total remainder (x%0 = 0).
    Rem,
    /// Bitwise XOR (the `⊕` of Fig. 6).
    Xor,
    /// Integer minimum.
    Min,
    /// Integer maximum (Fig. 10's `max(l, h)`).
    Max,
    /// List concatenation `++`.
    Concat,
    /// List indexing `l[i]`.
    Index,
    /// Equality test.
    Eq,
    /// Disequality test.
    Ne,
    /// Strictly-less test.
    Lt,
    /// Less-or-equal test.
    Le,
    /// Strictly-greater test.
    Gt,
    /// Greater-or-equal test.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// Applies the operator to two values (total).
    pub fn apply(self, a: &Value, b: &Value) -> Value {
        use std::cmp::Ordering::*;
        match self {
            BinOp::Add => a.add(b),
            BinOp::Sub => a.sub(b),
            BinOp::Mul => a.mul(b),
            BinOp::Div => a.div(b),
            BinOp::Rem => a.rem(b),
            BinOp::Xor => a.xor(b),
            BinOp::Min => a.min_val(b),
            BinOp::Max => a.max_val(b),
            BinOp::Concat => a.concat(b),
            BinOp::Index => a.index(b),
            BinOp::Eq => Value::Bool(a.same(b)),
            BinOp::Ne => Value::Bool(!a.same(b)),
            BinOp::Lt => Value::Bool(a.cmp_num(b) == Less),
            BinOp::Le => Value::Bool(a.cmp_num(b) != Greater),
            BinOp::Gt => Value::Bool(a.cmp_num(b) == Greater),
            BinOp::Ge => Value::Bool(a.cmp_num(b) != Less),
            BinOp::And => Value::Bool(a.truthy() && b.truthy()),
            BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
        }
    }

    /// The surface syntax token for this operator.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Xor => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Concat => "++",
            BinOp::Index => "[]",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators available in program expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// List length (`len(h)` in Fig. 6).
    Len,
}

impl UnOp {
    /// Applies the operator to a value (total).
    pub fn apply(self, a: &Value) -> Value {
        match self {
            UnOp::Neg => a.neg(),
            UnOp::Not => a.not(),
            UnOp::Len => a.len(),
        }
    }
}

/// A program expression / state predicate AST.
///
/// # Examples
///
/// ```
/// use hhl_lang::{Expr, Store, Value};
/// // x + 2 * y
/// let e = Expr::var("x") + Expr::int(2) * Expr::var("y");
/// let s = Store::from_pairs([("x", Value::Int(1)), ("y", Value::Int(3))]);
/// assert_eq!(e.eval(&s), Value::Int(7));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A program variable.
    Var(Symbol),
    /// A logical variable (only meaningful in *state expressions*; see the
    /// module docs).
    LVar(Symbol),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// List literal.
    pub fn list<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        // Lists of constants fold to a constant; otherwise build with ++.
        let mut acc = Expr::Const(Value::empty_list());
        for item in items {
            acc = Expr::Bin(BinOp::Concat, Box::new(acc), Box::new(item));
        }
        acc
    }

    /// Program variable reference.
    pub fn var<S: Into<Symbol>>(name: S) -> Expr {
        Expr::Var(name.into())
    }

    /// Logical variable reference (state expressions only).
    pub fn lvar<S: Into<Symbol>>(name: S) -> Expr {
        Expr::LVar(name.into())
    }

    /// Binary operation helper.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Unary operation helper.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    /// `self == other` as an expression.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self != other` as an expression.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }

    /// `self < other` as an expression.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self <= other` as an expression.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self > other` as an expression.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self >= other` as an expression.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// `self && other` as an expression.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }

    /// `self || other` as an expression.
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }

    /// Boolean negation as an expression.
    #[allow(clippy::should_implement_trait)] // `!e` on a program expression would read as Rust negation
    pub fn not(self) -> Expr {
        Expr::un(UnOp::Not, self)
    }

    /// `len(self)` as an expression.
    pub fn len(self) -> Expr {
        Expr::un(UnOp::Len, self)
    }

    /// `self ++ other` (list concatenation).
    pub fn concat(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Concat, self, other)
    }

    /// `self[idx]` (list indexing).
    pub fn index(self, idx: Expr) -> Expr {
        Expr::bin(BinOp::Index, self, idx)
    }

    /// `self ^ other` (XOR).
    pub fn xor(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Xor, self, other)
    }

    /// `max(self, other)`.
    pub fn max(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, other)
    }

    /// `min(self, other)`.
    pub fn min(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, other)
    }

    /// Evaluates over a program store; logical variables read as defaults.
    pub fn eval(&self, store: &Store) -> Value {
        match self {
            Expr::Const(v) => v.clone(),
            Expr::Var(x) => store.get(*x),
            Expr::LVar(_) => Value::default(),
            Expr::Un(op, a) => op.apply(&a.eval(store)),
            Expr::Bin(op, a, b) => op.apply(&a.eval(store), &b.eval(store)),
        }
    }

    /// Evaluates over an extended state (state-expression semantics:
    /// program variables from `φ_P`, logical variables from `φ_L`).
    pub fn eval_ext(&self, phi: &ExtState) -> Value {
        match self {
            Expr::Const(v) => v.clone(),
            Expr::Var(x) => phi.program.get(*x),
            Expr::LVar(x) => phi.logical.get(*x),
            Expr::Un(op, a) => op.apply(&a.eval_ext(phi)),
            Expr::Bin(op, a, b) => op.apply(&a.eval_ext(phi), &b.eval_ext(phi)),
        }
    }

    /// Evaluates as a predicate over a program store.
    pub fn holds(&self, store: &Store) -> bool {
        self.eval(store).truthy()
    }

    /// Evaluates as a predicate over an extended state.
    pub fn holds_ext(&self, phi: &ExtState) -> bool {
        self.eval_ext(phi).truthy()
    }

    /// Collects the free *program* variables into `out`.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<Symbol>) {
        match self {
            Expr::Const(_) | Expr::LVar(_) => {}
            Expr::Var(x) => {
                out.insert(*x);
            }
            Expr::Un(_, a) => a.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The free program variables of the expression.
    pub fn free_vars(&self) -> std::collections::BTreeSet<Symbol> {
        let mut s = std::collections::BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Substitutes expression `e` for program variable `x` (used to relate
    /// the classical Hoare assignment rule to `AssignS`).
    pub fn subst_var(&self, x: Symbol, e: &Expr) -> Expr {
        match self {
            Expr::Const(_) | Expr::LVar(_) => self.clone(),
            Expr::Var(y) => {
                if *y == x {
                    e.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Un(op, a) => Expr::Un(*op, Box::new(a.subst_var(x, e))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.subst_var(x, e)),
                Box::new(b.subst_var(x, e)),
            ),
        }
    }

    /// Number of AST nodes (used by benches to report problem sizes).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::LVar(_) => 1,
            Expr::Un(_, a) => 1 + a.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::un(UnOp::Neg, self)
    }
}

impl From<i64> for Expr {
    fn from(i: i64) -> Expr {
        Expr::int(i)
    }
}

impl From<bool> for Expr {
    fn from(b: bool) -> Expr {
        Expr::bool(b)
    }
}

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::LVar(_) => 10,
        Expr::Un(_, _) => 9,
        Expr::Bin(op, _, _) => match op {
            BinOp::Index => 9,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 8,
            BinOp::Add | BinOp::Sub | BinOp::Xor | BinOp::Concat => 7,
            BinOp::Min | BinOp::Max => 10,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::And => 4,
            BinOp::Or => 3,
        },
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
            let p = prec(e);
            let needs = p < parent;
            if needs {
                write!(f, "(")?;
            }
            match e {
                Expr::Const(v) => write!(f, "{v}")?,
                Expr::Var(x) => write!(f, "{x}")?,
                Expr::LVar(x) => write!(f, "${x}")?,
                Expr::Un(UnOp::Neg, a) => {
                    write!(f, "-")?;
                    go(a, f, 10)?;
                }
                Expr::Un(UnOp::Not, a) => {
                    write!(f, "!")?;
                    go(a, f, 10)?;
                }
                Expr::Un(UnOp::Len, a) => {
                    write!(f, "len(")?;
                    go(a, f, 0)?;
                    write!(f, ")")?;
                }
                Expr::Bin(BinOp::Index, a, b) => {
                    go(a, f, 9)?;
                    write!(f, "[")?;
                    go(b, f, 0)?;
                    write!(f, "]")?;
                }
                Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
                    write!(f, "{}(", op.token())?;
                    go(a, f, 0)?;
                    write!(f, ", ")?;
                    go(b, f, 0)?;
                    write!(f, ")")?;
                }
                Expr::Bin(op, a, b) => {
                    go(a, f, p)?;
                    write!(f, " {} ", op.token())?;
                    go(b, f, p + 1)?;
                }
            }
            if needs {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_evaluation() {
        let s = Store::from_pairs([("x", Value::Int(10)), ("y", Value::Int(3))]);
        let e = (Expr::var("x") - Expr::var("y")) * Expr::int(2);
        assert_eq!(e.eval(&s), Value::Int(14));
    }

    #[test]
    fn predicates() {
        let s = Store::from_pairs([("h", Value::Int(5))]);
        assert!(Expr::var("h").gt(Expr::int(0)).holds(&s));
        assert!(!Expr::var("h").le(Expr::int(0)).holds(&s));
    }

    #[test]
    fn logical_vars_need_extended_state() {
        let e = Expr::lvar("t").eq(Expr::int(1));
        let phi = ExtState::new(Store::from_pairs([("t", Value::Int(1))]), Store::new());
        assert!(e.holds_ext(&phi));
        assert!(!e.holds(&phi.program)); // plain-store eval defaults LVars
    }

    #[test]
    fn substitution() {
        let e = Expr::var("x") + Expr::var("y");
        let e2 = e.subst_var(Symbol::new("x"), &Expr::int(5));
        let s = Store::from_pairs([("y", Value::Int(1))]);
        assert_eq!(e2.eval(&s), Value::Int(6));
        // untouched variable remains
        assert_eq!(e2.free_vars().len(), 1);
    }

    #[test]
    fn free_vars() {
        let e = Expr::var("a").lt(Expr::var("b") + Expr::int(1));
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::new("a")));
        assert!(fv.contains(&Symbol::new("b")));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn list_expression_evaluation() {
        let s = Store::from_pairs([("h", Value::list([Value::Int(4), Value::Int(7)]))]);
        assert_eq!(Expr::var("h").len().eval(&s), Value::Int(2));
        assert_eq!(Expr::var("h").index(Expr::int(1)).eval(&s), Value::Int(7));
        let cat = Expr::var("h").concat(Expr::list([Expr::int(9)]));
        assert_eq!(
            cat.eval(&s),
            Value::list([Value::Int(4), Value::Int(7), Value::Int(9)])
        );
    }

    #[test]
    fn display_respects_precedence() {
        let e = (Expr::var("x") + Expr::int(1)) * Expr::var("y");
        assert_eq!(e.to_string(), "(x + 1) * y");
        let e2 = Expr::var("x") + Expr::int(1) * Expr::var("y");
        assert_eq!(e2.to_string(), "x + 1 * y");
        let e3 = Expr::var("x")
            .le(Expr::int(9))
            .and(Expr::var("y").gt(Expr::int(0)));
        assert_eq!(e3.to_string(), "x <= 9 && y > 0");
    }

    #[test]
    fn max_min_display_and_eval() {
        let e = Expr::var("l").max(Expr::var("h"));
        assert_eq!(e.to_string(), "max(l, h)");
        let s = Store::from_pairs([("l", Value::Int(2)), ("h", Value::Int(5))]);
        assert_eq!(e.eval(&s), Value::Int(5));
    }

    #[test]
    fn xor_involution_expr() {
        let s = Store::from_pairs([("a", Value::Int(99)), ("k", Value::Int(42))]);
        let e = Expr::var("a").xor(Expr::var("k")).xor(Expr::var("k"));
        assert_eq!(e.eval(&s), Value::Int(99));
    }
}
