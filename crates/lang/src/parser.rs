//! A textual surface syntax for commands and expressions.
//!
//! The concrete grammar mirrors the paper's notation:
//!
//! ```text
//! cmd   ::= stmt (';' stmt)*
//! stmt  ::= 'skip'
//!         | ident ':=' 'nonDet' '(' ')'
//!         | ident ':=' 'randIntBounded' '(' expr ',' expr ')'
//!         | ident ':=' expr
//!         | 'assume' expr
//!         | 'if' '(' expr ')' block ('else' block)?
//!         | 'while' '(' expr ')' block
//!         | block ('+' block)+          // non-deterministic choice
//!         | block '*'                   // non-deterministic iteration
//! block ::= '{' cmd? '}'
//! expr  ::= prec-climbing over || && == != < <= > >= + - ++ ^ * / % ! len [..] $lvar
//! ```
//!
//! # Examples
//!
//! ```
//! use hhl_lang::parse_cmd;
//! let c4 = parse_cmd("y := nonDet(); assume y <= 9; l := h + y").unwrap();
//! assert_eq!(c4.size(), 5);
//! ```

use std::fmt;

use crate::cmd::Cmd;
use crate::expr::{BinOp, Expr, UnOp};
use crate::value::Value;

/// Error produced when parsing a command or expression fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input at which the failure occurred.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    LVar(String),
    Sym(&'static str),
}

pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Returns the next token without consuming it.
    pub(crate) fn peek(&mut self) -> Result<Option<Tok>, ParseError> {
        let saved = self.pos;
        let t = self.next_tok()?;
        self.pos = saved;
        Ok(t)
    }

    /// Consumes and returns the next token.
    pub(crate) fn next_tok(&mut self) -> Result<Option<Tok>, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let c = self.src[self.pos];
        // Multi-char symbols first.
        let two: &[u8] = &self.src[self.pos..(self.pos + 2).min(self.src.len())];
        for s in [":=", "==", "!=", "<=", ">=", "&&", "||", "++", "=>"] {
            if two == s.as_bytes() {
                self.pos += 2;
                return Ok(Some(Tok::Sym(match s {
                    ":=" => ":=",
                    "==" => "==",
                    "!=" => "!=",
                    "<=" => "<=",
                    ">=" => ">=",
                    "&&" => "&&",
                    "||" => "||",
                    "++" => "++",
                    "=>" => "=>",
                    _ => unreachable!(),
                })));
            }
        }
        let singles = b"+-*/%^<>!(){}[],;.|=:";
        if singles.contains(&c) {
            self.pos += 1;
            let s = match c {
                b'+' => "+",
                b'-' => "-",
                b'*' => "*",
                b'/' => "/",
                b'%' => "%",
                b'^' => "^",
                b'<' => "<",
                b'>' => ">",
                b'!' => "!",
                b'(' => "(",
                b')' => ")",
                b'{' => "{",
                b'}' => "}",
                b'[' => "[",
                b']' => "]",
                b',' => ",",
                b';' => ";",
                b'.' => ".",
                b'|' => "|",
                b'=' => "=",
                b':' => ":",
                _ => unreachable!(),
            };
            return Ok(Some(Tok::Sym(s)));
        }
        if c == b'$' {
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            if start == self.pos {
                return self.err("expected logical variable name after '$'");
            }
            let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            return Ok(Some(Tok::LVar(name)));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
            let n: i64 = match text.parse() {
                Ok(n) => n,
                Err(_) => return self.err(format!("integer literal out of range: {text}")),
            };
            return Ok(Some(Tok::Int(n)));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            return Ok(Some(Tok::Ident(name)));
        }
        self.err(format!("unexpected character {:?}", c as char))
    }

    pub(crate) fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.next_tok()? {
            Some(Tok::Sym(t)) if t == s => Ok(()),
            other => self.err(format!("expected `{s}`, found {other:?}")),
        }
    }

    fn eat_sym(&mut self, s: &str) -> Result<bool, ParseError> {
        if let Some(Tok::Sym(t)) = self.peek()? {
            if t == s {
                self.next_tok()?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn eat_ident(&mut self, kw: &str) -> Result<bool, ParseError> {
        if let Some(Tok::Ident(t)) = self.peek()? {
            if t == kw {
                self.next_tok()?;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

pub(crate) fn parse_expr_bp(lx: &mut Lexer<'_>, min_bp: u8) -> Result<Expr, ParseError> {
    let mut lhs = parse_expr_atom(lx)?;
    loop {
        let op = match lx.peek()? {
            Some(Tok::Sym(s)) => match s {
                "||" => Some((BinOp::Or, 1)),
                "&&" => Some((BinOp::And, 2)),
                "==" | "=" => Some((BinOp::Eq, 3)),
                "!=" => Some((BinOp::Ne, 3)),
                "<" => Some((BinOp::Lt, 3)),
                "<=" => Some((BinOp::Le, 3)),
                ">" => Some((BinOp::Gt, 3)),
                ">=" => Some((BinOp::Ge, 3)),
                "+" => Some((BinOp::Add, 4)),
                "-" => Some((BinOp::Sub, 4)),
                "++" => Some((BinOp::Concat, 4)),
                "^" => Some((BinOp::Xor, 4)),
                "*" => Some((BinOp::Mul, 5)),
                "/" => Some((BinOp::Div, 5)),
                "%" => Some((BinOp::Rem, 5)),
                _ => None,
            },
            _ => None,
        };
        let Some((op, bp)) = op else { break };
        if bp < min_bp {
            break;
        }
        lx.next_tok()?;
        let rhs = parse_expr_bp(lx, bp + 1)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_expr_atom(lx: &mut Lexer<'_>) -> Result<Expr, ParseError> {
    let tok = lx.next_tok()?;
    let mut base = match tok {
        Some(Tok::Int(n)) => Expr::int(n),
        Some(Tok::LVar(name)) => Expr::lvar(name.as_str()),
        // Negated integer literals fold to the constant, so `-1` parses to
        // exactly what `Display` prints for `Const(Int(-1))`.
        Some(Tok::Sym("-")) => match parse_expr_atom(lx)? {
            Expr::Const(Value::Int(n)) => Expr::int(n.wrapping_neg()),
            e => -e,
        },
        Some(Tok::Sym("!")) => parse_expr_atom(lx)?.not(),
        Some(Tok::Sym("(")) => {
            let e = parse_expr_bp(lx, 0)?;
            lx.expect_sym(")")?;
            e
        }
        Some(Tok::Sym("[")) => {
            let mut items = Vec::new();
            if !lx.eat_sym("]")? {
                loop {
                    items.push(parse_expr_bp(lx, 0)?);
                    if lx.eat_sym("]")? {
                        break;
                    }
                    lx.expect_sym(",")?;
                }
            }
            if items.iter().all(|e| matches!(e, Expr::Const(_))) {
                Expr::Const(Value::List(
                    items
                        .iter()
                        .map(|e| match e {
                            Expr::Const(v) => v.clone(),
                            _ => unreachable!(),
                        })
                        .collect(),
                ))
            } else {
                Expr::list(items)
            }
        }
        Some(Tok::Ident(name)) => match name.as_str() {
            "true" => Expr::bool(true),
            "false" => Expr::bool(false),
            "len" => {
                lx.expect_sym("(")?;
                let e = parse_expr_bp(lx, 0)?;
                lx.expect_sym(")")?;
                Expr::un(UnOp::Len, e)
            }
            "max" | "min" => {
                lx.expect_sym("(")?;
                let a = parse_expr_bp(lx, 0)?;
                lx.expect_sym(",")?;
                let b = parse_expr_bp(lx, 0)?;
                lx.expect_sym(")")?;
                let op = if name == "max" {
                    BinOp::Max
                } else {
                    BinOp::Min
                };
                Expr::bin(op, a, b)
            }
            _ => Expr::var(name.as_str()),
        },
        other => {
            return Err(ParseError {
                message: format!("expected expression, found {other:?}"),
                position: lx.pos,
            })
        }
    };
    // Postfix indexing: e[i], possibly chained.
    while lx.eat_sym("[")? {
        let idx = parse_expr_bp(lx, 0)?;
        lx.expect_sym("]")?;
        base = base.index(idx);
    }
    Ok(base)
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn parse_block(lx: &mut Lexer<'_>) -> Result<Cmd, ParseError> {
    lx.expect_sym("{")?;
    if lx.eat_sym("}")? {
        return Ok(Cmd::Skip);
    }
    let c = parse_seq(lx)?;
    lx.expect_sym("}")?;
    Ok(c)
}

fn parse_stmt(lx: &mut Lexer<'_>) -> Result<Cmd, ParseError> {
    if let Some(Tok::Sym("{")) = lx.peek()? {
        // block, possibly followed by + block ... or postfix *
        let mut c = parse_block(lx)?;
        if lx.eat_sym("*")? {
            return Ok(Cmd::star(c));
        }
        while lx.eat_sym("+")? {
            let rhs = parse_block(lx)?;
            c = Cmd::choice(c, rhs);
        }
        return Ok(c);
    }
    if lx.eat_ident("skip")? {
        return Ok(Cmd::Skip);
    }
    if lx.eat_ident("assume")? {
        let b = parse_expr_bp(lx, 0)?;
        return Ok(Cmd::assume(b));
    }
    if lx.eat_ident("if")? {
        lx.expect_sym("(")?;
        let b = parse_expr_bp(lx, 0)?;
        lx.expect_sym(")")?;
        let then_branch = parse_block(lx)?;
        if lx.eat_ident("else")? {
            let else_branch = parse_block(lx)?;
            return Ok(Cmd::if_else(b, then_branch, else_branch));
        }
        return Ok(Cmd::if_then(b, then_branch));
    }
    if lx.eat_ident("while")? {
        lx.expect_sym("(")?;
        let b = parse_expr_bp(lx, 0)?;
        lx.expect_sym(")")?;
        let body = parse_block(lx)?;
        return Ok(Cmd::while_loop(b, body));
    }
    // assignment / havoc
    match lx.next_tok()? {
        Some(Tok::Ident(x)) => {
            lx.expect_sym(":=")?;
            if lx.eat_ident("nonDet")? {
                lx.expect_sym("(")?;
                lx.expect_sym(")")?;
                return Ok(Cmd::havoc(x.as_str()));
            }
            if lx.eat_ident("randIntBounded")? {
                lx.expect_sym("(")?;
                let a = parse_expr_bp(lx, 0)?;
                lx.expect_sym(",")?;
                let b = parse_expr_bp(lx, 0)?;
                lx.expect_sym(")")?;
                return Ok(Cmd::rand_int_bounded(x.as_str(), a, b));
            }
            let e = parse_expr_bp(lx, 0)?;
            Ok(Cmd::assign(x.as_str(), e))
        }
        other => Err(ParseError {
            message: format!("expected statement, found {other:?}"),
            position: lx.pos,
        }),
    }
}

fn parse_seq(lx: &mut Lexer<'_>) -> Result<Cmd, ParseError> {
    let mut stmts = vec![parse_stmt(lx)?];
    while lx.eat_sym(";")? {
        // allow trailing semicolon before '}' or end of input
        match lx.peek()? {
            None | Some(Tok::Sym("}")) => break,
            _ => stmts.push(parse_stmt(lx)?),
        }
    }
    Ok(Cmd::seq_all(stmts))
}

/// Parses a command from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token if the input
/// is not a well-formed command.
///
/// # Examples
///
/// ```
/// use hhl_lang::parse_cmd;
/// let fib = parse_cmd(
///     "a := 0; b := 1; i := 0;
///      while (i < n) { tmp := b; b := a + b; a := tmp; i := i + 1 }",
/// ).unwrap();
/// assert!(!fib.is_loop_free());
/// ```
pub fn parse_cmd(src: &str) -> Result<Cmd, ParseError> {
    let mut lx = Lexer::new(src);
    let c = parse_seq(&mut lx)?;
    match lx.peek()? {
        None => Ok(c),
        Some(t) => Err(ParseError {
            message: format!("trailing input after command: {t:?}"),
            position: lx.pos,
        }),
    }
}

/// Parses an expression from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a well-formed expression.
///
/// # Examples
///
/// ```
/// use hhl_lang::{parse_expr, Store, Value};
/// let e = parse_expr("h + y <= 20 && y >= 0").unwrap();
/// let s = Store::from_pairs([("h", Value::Int(11)), ("y", Value::Int(9))]);
/// assert!(e.holds(&s));
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut lx = Lexer::new(src);
    let e = parse_expr_bp(&mut lx, 0)?;
    match lx.peek()? {
        None => Ok(e),
        Some(t) => Err(ParseError {
            message: format!("trailing input after expression: {t:?}"),
            position: lx.pos,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::state::Store;

    #[test]
    fn parses_paper_c2() {
        // C2 = if (h > 0) { l := 1 } else { l := 0 }
        let c = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").unwrap();
        let cfg = ExecConfig::default();
        let hi = Store::from_pairs([("h", Value::Int(5))]);
        let out = cfg.exec(&c, &hi);
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get("l"), Value::Int(1));
    }

    #[test]
    fn parses_nondet_and_rand() {
        let c = parse_cmd("y := nonDet()").unwrap();
        assert_eq!(c, Cmd::havoc("y"));
        let r = parse_cmd("x := randIntBounded(0, 9)").unwrap();
        assert_eq!(r, Cmd::rand_int_bounded("x", Expr::int(0), Expr::int(9)));
    }

    #[test]
    fn parses_choice_and_star() {
        let c = parse_cmd("{ x := 1 } + { x := 2 }").unwrap();
        assert!(matches!(c, Cmd::Choice(_, _)));
        let s = parse_cmd("{ x := x + 1 }*").unwrap();
        assert!(matches!(s, Cmd::Star(_)));
    }

    #[test]
    fn parses_while_with_desugaring() {
        let w = parse_cmd("while (i < n) { i := i + 1 }").unwrap();
        let manual = Cmd::while_loop(
            Expr::var("i").lt(Expr::var("n")),
            Cmd::assign("i", Expr::var("i") + Expr::int(1)),
        );
        assert_eq!(w, manual);
    }

    #[test]
    fn parses_lists_and_len() {
        let e = parse_expr("len(h) + h[i]").unwrap();
        let s = Store::from_pairs([
            ("h", Value::list([Value::Int(10), Value::Int(20)])),
            ("i", Value::Int(1)),
        ]);
        assert_eq!(e.eval(&s), Value::Int(22));
        let lit = parse_expr("[1, 2, 3]").unwrap();
        assert_eq!(
            lit,
            Expr::Const(Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]))
        );
    }

    #[test]
    fn precedence_is_standard() {
        let e = parse_expr("1 + 2 * 3 == 7").unwrap();
        assert!(e.holds(&Store::new()));
        let e2 = parse_expr("(1 + 2) * 3 == 9").unwrap();
        assert!(e2.holds(&Store::new()));
        let e3 = parse_expr("true || false && false").unwrap();
        assert!(e3.holds(&Store::new())); // && binds tighter
    }

    #[test]
    fn parses_logical_vars() {
        let e = parse_expr("$t == 1").unwrap();
        assert_eq!(e, Expr::lvar("t").eq(Expr::int(1)));
    }

    #[test]
    fn comments_and_whitespace() {
        let c = parse_cmd("// initialize\n x := 0; // then loop\n while (x < 2) { x := x + 1 }")
            .unwrap();
        let cfg = ExecConfig::default().fuel(16);
        let out = cfg.exec(&c, &Store::new());
        assert_eq!(out.iter().next().unwrap().get("x"), Value::Int(2));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_cmd("x := ").unwrap_err();
        assert!(err.position > 0);
        assert!(err.to_string().contains("expression"));
        assert!(parse_cmd("x := 1 1").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn trailing_semicolons_allowed() {
        let c = parse_cmd("x := 1;").unwrap();
        assert_eq!(c, Cmd::assign("x", Expr::int(1)));
        let b = parse_cmd("if (x > 0) { y := 1; } else { y := 0; }").unwrap();
        assert!(matches!(b, Cmd::Choice(_, _)));
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = "y := nonDet(); assume y <= 9; l := h + y";
        let c = parse_cmd(src).unwrap();
        let printed = c.to_string();
        let reparsed = parse_cmd(&printed).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn parses_fig8_minimum_program() {
        let c = parse_cmd(
            "x := 0; y := 0; i := 0;
             while (i < k) {
               r := nonDet(); assume r >= 2;
               t := x; x := 2 * x + r; y := y + t * r; i := i + 1
             }",
        )
        .unwrap();
        let cfg = ExecConfig::with_domain([Value::Int(2), Value::Int(3)]).fuel(8);
        let init = Store::from_pairs([("k", Value::Int(2))]);
        let out = cfg.exec(&c, &init);
        // r ∈ {2,3} twice: 4 paths, all distinct in (x, y)
        assert_eq!(out.len(), 4);
        // minimal run is r=2 both times: x = 2*2+2 = 6, y = 0 + 2*3... compute:
        // iter1: t=0, x=2, y=0; iter2: t=2, x=2*2+2=6, y=0+2*2=4
        assert!(out
            .iter()
            .any(|s| s.get("x") == Value::Int(6) && s.get("y") == Value::Int(4)));
    }
}
