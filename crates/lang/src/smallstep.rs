//! Small-step semantics.
//!
//! Appendix E observes that characterizing *total* correctness (and
//! non-termination) properly requires a small-step presentation of the
//! semantics, where intermediate configurations are observable. This module
//! provides it: configurations `⟨C, σ⟩` step to either `⟨C', σ'⟩` or a final
//! state, and [`reachable_finals`] computes the same final-state sets as the
//! big-step [`ExecConfig::exec`](crate::ExecConfig::exec) (property-tested
//! equivalence), while [`diverges_within`] observes non-terminating
//! behaviour the big-step semantics silently drops.

use std::collections::BTreeSet;

use crate::cmd::Cmd;
use crate::exec::ExecConfig;
use crate::state::Store;

/// A small-step outcome: either an intermediate configuration or a final
/// state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// The execution continues with the residual command in the new state.
    Continue(Cmd, Store),
    /// The execution terminated in the given state.
    Done(Store),
}

/// All single steps of the configuration `⟨cmd, σ⟩` (non-determinism yields
/// several successors; a stuck `assume` yields none).
pub fn step(cmd: &Cmd, sigma: &Store, cfg: &ExecConfig) -> Vec<Step> {
    match cmd {
        Cmd::Skip => vec![Step::Done(sigma.clone())],
        Cmd::Assign(x, e) => vec![Step::Done(sigma.with(*x, e.eval(sigma)))],
        Cmd::Havoc(x) => cfg
            .havoc_domain
            .iter()
            .map(|v| Step::Done(sigma.with(*x, v.clone())))
            .collect(),
        Cmd::Assume(b) => {
            if b.holds(sigma) {
                vec![Step::Done(sigma.clone())]
            } else {
                Vec::new() // stuck: no execution
            }
        }
        Cmd::Seq(c1, c2) => step(c1, sigma, cfg)
            .into_iter()
            .map(|s| match s {
                Step::Done(sigma1) => Step::Continue((**c2).clone(), sigma1),
                Step::Continue(c1p, sigma1) => {
                    Step::Continue(Cmd::seq(c1p, (**c2).clone()), sigma1)
                }
            })
            .collect(),
        Cmd::Choice(c1, c2) => vec![
            Step::Continue((**c1).clone(), sigma.clone()),
            Step::Continue((**c2).clone(), sigma.clone()),
        ],
        Cmd::Star(c) => vec![
            // Stop iterating …
            Step::Done(sigma.clone()),
            // … or unroll once more.
            Step::Continue(
                Cmd::seq((**c).clone(), Cmd::star((**c).clone())),
                sigma.clone(),
            ),
        ],
    }
}

/// The final states reachable from `⟨cmd, σ⟩` by iterated small steps, with
/// a visited-set fixpoint bounded by `max_configs` explored configurations.
///
/// Agrees with the big-step semantics on every terminating execution
/// (property-tested in this module and in the workspace test suite).
pub fn reachable_finals(
    cmd: &Cmd,
    sigma: &Store,
    cfg: &ExecConfig,
    max_configs: usize,
) -> BTreeSet<Store> {
    let mut finals = BTreeSet::new();
    let mut seen: BTreeSet<(Cmd, Store)> = BTreeSet::new();
    let mut frontier: Vec<(Cmd, Store)> = vec![(cmd.clone(), sigma.clone())];
    while let Some((c, s)) = frontier.pop() {
        if seen.len() >= max_configs {
            break;
        }
        if !seen.insert((c.clone(), s.clone())) {
            continue;
        }
        for next in step(&c, &s, cfg) {
            match next {
                Step::Done(sf) => {
                    finals.insert(sf);
                }
                Step::Continue(cn, sn) => frontier.push((cn, sn)),
            }
        }
    }
    finals
}

/// True iff `⟨cmd, σ⟩` can run for at least `fuel` small steps without
/// finishing — observable divergence, which App. E's recurrent-set argument
/// makes provable and which the big-step semantics cannot express.
pub fn diverges_within(cmd: &Cmd, sigma: &Store, cfg: &ExecConfig, fuel: u32) -> bool {
    // A configuration cycle implies a genuinely infinite execution.
    fn go(
        c: &Cmd,
        s: &Store,
        cfg: &ExecConfig,
        fuel: u32,
        seen: &mut BTreeSet<(Cmd, Store)>,
    ) -> bool {
        if fuel == 0 {
            return true; // ran long enough without finishing
        }
        if !seen.insert((c.clone(), s.clone())) {
            return true; // revisited configuration: a lasso
        }
        step(c, s, cfg).into_iter().any(|st| match st {
            Step::Done(_) => false,
            Step::Continue(cn, sn) => go(&cn, &sn, cfg, fuel - 1, seen),
        })
    }
    go(cmd, sigma, cfg, fuel, &mut BTreeSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::parser::parse_cmd;

    fn s0() -> Store {
        Store::new()
    }

    #[test]
    fn small_step_agrees_with_big_step_on_basics() {
        let cfg = ExecConfig::int_range(0, 2);
        for src in [
            "skip",
            "x := x + 1",
            "x := nonDet()",
            "assume x > 0",
            "x := 1; y := x + 1",
            "{ x := 1 } + { x := 2 }",
            "if (x > 0) { y := 1 } else { y := 2 }",
            "x := 0; while (x < 2) { x := x + 1 }",
        ] {
            let cmd = parse_cmd(src).unwrap();
            let big = cfg.exec(&cmd, &s0());
            let small = reachable_finals(&cmd, &s0(), &cfg, 10_000);
            assert_eq!(big, small, "semantics disagree on {src}");
        }
    }

    #[test]
    fn star_includes_zero_iterations_small_step() {
        let cmd = Cmd::star(Cmd::assign("x", Expr::var("x") + Expr::int(1)));
        let cfg = ExecConfig::int_range(0, 1).fuel(3);
        let small = reachable_finals(&cmd, &s0(), &cfg, 64);
        assert!(small.contains(&s0()));
    }

    #[test]
    fn divergence_is_observable() {
        let cfg = ExecConfig::int_range(0, 1);
        let spin = parse_cmd("while (true) { skip }").unwrap();
        assert!(diverges_within(&spin, &s0(), &cfg, 50));
        // Big-step sees nothing at all:
        assert!(cfg.clone().fuel(10).exec(&spin, &s0()).is_empty());
        // A terminating loop does not diverge.
        let count = parse_cmd("x := 0; while (x < 2) { x := x + 1 }").unwrap();
        assert!(!diverges_within(&count, &s0(), &cfg, 50));
    }

    #[test]
    fn partial_divergence_mixed_with_termination() {
        // x := nonDet(); while (x > 0) { skip }: some runs finish, some spin
        // — small step observes both.
        let cfg = ExecConfig::int_range(0, 1);
        let cmd = parse_cmd("x := nonDet(); while (x > 0) { skip }").unwrap();
        assert!(diverges_within(&cmd, &s0(), &cfg, 50));
        assert!(!reachable_finals(&cmd, &s0(), &cfg, 1000).is_empty());
    }

    #[test]
    fn stuck_assume_has_no_steps() {
        let cfg = ExecConfig::default();
        assert!(step(&Cmd::assume(Expr::bool(false)), &s0(), &cfg).is_empty());
        assert!(!diverges_within(
            &Cmd::assume(Expr::bool(false)),
            &s0(),
            &cfg,
            50
        ));
    }
}
