//! Global interning for variable names and hash-consing of program terms.
//!
//! Program variables (`PVars`) and logical variables (`LVars`) are referenced
//! pervasively — in states, expressions, commands and hyper-assertions — so we
//! intern them once into a compact [`Symbol`] and compare by id.
//!
//! The same table-based scheme hash-conses whole commands and expressions:
//! [`CmdId`] and [`ExprId`] assign each structurally distinct term a compact,
//! process-stable id, so structural equality becomes an integer comparison.
//! The extended-semantics memo table ([`crate::memo::SemCache`]) keys its
//! entries on `CmdId`, which makes "the same subprogram seen again" — a loop
//! unrolling, a shared prefix across triples, a repeated WP premise — a
//! constant-time cache hit instead of a deep tree compare.
//!
//! All interners are process-wide tables guarded by reader-writer locks
//! with a double-checked write path: looking up an already-interned name
//! or term — the steady state once a batch is warm — takes only a shared
//! read lock, so concurrent workers never serialize behind each other.
//! Interning itself (the write lock) happens once per distinct term.
//!
//! # Session arenas
//!
//! The base tables retain interned terms for the lifetime of the process —
//! ids must stay stable, so there is no eviction. That contract is sized
//! for CLI-shaped lifetimes (one batch per process). A long-lived embedder
//! (the `hhl serve` daemon) instead brackets untrusted or transient work in
//! a **session** ([`begin_session`]): while any session is active, newly
//! interned names and terms land in a process-wide *overlay* keyed from
//! [`OVERLAY_BASE`] upward, layered over the base tables. When the last
//! session ends (and no [`pin_interner`] guard is live), the overlay maps
//! are dropped wholesale and their memory reclaimed. Overlay ids are
//! allocated monotonically and **never reused**, so a stale id held across
//! a reclaim can only miss (compare unequal, resolve to a placeholder) —
//! it can never alias a different term. Base ids interned before a session
//! began keep working throughout; equal strings and structurally equal
//! terms always map to the same id while that id's table generation is
//! live, because every insert decision is made under one overlay lock that
//! also serializes base inserts.
//!
//! The cost of that serialization is paid only on the insert (miss) path,
//! which fires once per distinct term; warm lookups still take nothing but
//! the base table's shared read lock.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

use crate::cmd::Cmd;
use crate::expr::Expr;

/// First id allocated from the session overlay; ids below this bound are
/// base-table ids (stable for the process lifetime), ids at or above it
/// are overlay ids (monotonic, never reused, reclaimed on session drop).
const OVERLAY_BASE: u32 = 0x8000_0000;

/// An interned variable name.
///
/// `Symbol`s are cheap to copy and compare. Two symbols are equal iff they
/// were interned from equal strings. Ordering is by interning order, which is
/// stable within a process and sufficient for the canonical (deterministic)
/// state representations used throughout the workspace.
///
/// # Examples
///
/// ```
/// use hhl_lang::Symbol;
/// let x = Symbol::new("x");
/// assert_eq!(x, Symbol::new("x"));
/// assert_ne!(x, Symbol::new("y"));
/// assert_eq!(x.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// One term kind's slice of the session overlay: forward map, reverse map
/// (overlay ids are sparse, so a `HashMap` rather than a `Vec`), and the
/// monotonic id allocator. `next` survives reclamation — ids are never
/// reused — while `map`/`rev` are replaced wholesale to return memory.
struct TermOverlay<T> {
    map: HashMap<T, u32>,
    rev: HashMap<u32, T>,
    next: u32,
}

impl<T> TermOverlay<T> {
    fn new() -> TermOverlay<T> {
        TermOverlay {
            map: HashMap::new(),
            rev: HashMap::new(),
            next: 0,
        }
    }

    fn alloc(&mut self) -> u32 {
        let id = OVERLAY_BASE
            .checked_add(self.next)
            .expect("session overlay id space exhausted");
        self.next += 1;
        id
    }

    fn reclaim(&mut self) {
        // Replace rather than clear: `HashMap::clear` keeps capacity, and
        // the whole point of reclamation is returning the memory.
        self.map = HashMap::new();
        self.rev = HashMap::new();
    }
}

/// The process-wide session overlay. One lock guards the session/pin
/// counters *and* every overlay map, and every base-table insert happens
/// while holding it — that single serialization point is what makes the
/// "equal strings ⇒ equal ids" invariant race-free across the base/overlay
/// boundary (see the module docs).
struct Overlay {
    /// Live [`SessionArena`] guards. While non-zero, inserts overlay.
    sessions: u32,
    /// Live [`InternPin`] guards. Reclamation waits for these so that a
    /// request running concurrently with a session drop never sees the
    /// overlay vanish mid-computation.
    pins: u32,
    symbols: TermOverlay<String>,
    cmds: TermOverlay<Cmd>,
    exprs: TermOverlay<Expr>,
}

fn overlay() -> &'static RwLock<Overlay> {
    static OVERLAY: OnceLock<RwLock<Overlay>> = OnceLock::new();
    OVERLAY.get_or_init(|| {
        RwLock::new(Overlay {
            sessions: 0,
            pins: 0,
            symbols: TermOverlay::new(),
            cmds: TermOverlay::new(),
            exprs: TermOverlay::new(),
        })
    })
}

fn maybe_reclaim(ov: &mut Overlay) {
    if ov.sessions == 0 && ov.pins == 0 {
        ov.symbols.reclaim();
        ov.cmds.reclaim();
        ov.exprs.reclaim();
    }
}

/// An active interner session (RAII). See [`begin_session`].
pub struct SessionArena {
    _priv: (),
}

/// Opens an interner session: until the returned guard (and every other
/// live session) is dropped, newly interned names and terms land in the
/// reclaimable overlay instead of the grow-forever base tables.
///
/// Sessions nest and overlap freely; the overlay is shared between them
/// and reclaimed only when the last session ends and no [`pin_interner`]
/// guard is live.
pub fn begin_session() -> SessionArena {
    let mut ov = overlay().write().expect("overlay poisoned");
    ov.sessions += 1;
    SessionArena { _priv: () }
}

impl Drop for SessionArena {
    fn drop(&mut self) {
        let mut ov = overlay().write().expect("overlay poisoned");
        ov.sessions -= 1;
        maybe_reclaim(&mut ov);
    }
}

/// A reclamation barrier (RAII). See [`pin_interner`].
pub struct InternPin {
    _priv: (),
}

/// Pins the interner overlay: reclamation is deferred until the returned
/// guard is dropped. A long-lived embedder wraps each unit of work (one
/// daemon request) in a pin so that symbols interned into the overlay at
/// the start of the unit — because a session happened to be active — stay
/// resolvable for the unit's whole lifetime even if the session ends
/// midway. Without the pin, re-interning the same string after a reclaim
/// would mint a different id than the one already held.
pub fn pin_interner() -> InternPin {
    let mut ov = overlay().write().expect("overlay poisoned");
    ov.pins += 1;
    InternPin { _priv: () }
}

impl Drop for InternPin {
    fn drop(&mut self) {
        let mut ov = overlay().write().expect("overlay poisoned");
        ov.pins -= 1;
        maybe_reclaim(&mut ov);
    }
}

/// A point-in-time size report for every intern table, split into the
/// process-lifetime base tables and the reclaimable session overlay.
///
/// The serve differential harness uses this to assert that hostile session
/// work neither grows the base tables nor survives session drop
/// (`overlay_*` return to zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternSizes {
    /// Interned names in the base symbol table.
    pub symbols: usize,
    /// Hash-consed commands in the base table.
    pub cmds: usize,
    /// Hash-consed expressions in the base table.
    pub exprs: usize,
    /// Names currently held by the session overlay.
    pub overlay_symbols: usize,
    /// Commands currently held by the session overlay.
    pub overlay_cmds: usize,
    /// Expressions currently held by the session overlay.
    pub overlay_exprs: usize,
}

/// Returns the current size of every intern table (base and overlay).
pub fn intern_sizes() -> InternSizes {
    let ov = overlay().read().expect("overlay poisoned");
    InternSizes {
        symbols: interner().read().expect("interner poisoned").names.len(),
        cmds: cmd_table().len(),
        exprs: expr_table().len(),
        overlay_symbols: ov.symbols.map.len(),
        overlay_cmds: ov.cmds.map.len(),
        overlay_exprs: ov.exprs.map.len(),
    }
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    ///
    /// Idempotent: interning the same string twice yields the same symbol
    /// (for as long as that symbol's table generation is live — see the
    /// module docs on session arenas). Already-interned names — every
    /// lookup after the first — are resolved under a shared read lock;
    /// only a genuinely new name takes the overlay write lock, re-checking
    /// both layers under it in case a racing thread interned the same name
    /// between the two acquisitions.
    pub fn new(name: &str) -> Symbol {
        if let Some(&id) = interner().read().expect("interner poisoned").map.get(name) {
            return Symbol(id);
        }
        let mut ov = overlay().write().expect("overlay poisoned");
        // Base inserts only happen under the overlay lock, so this
        // re-check is authoritative for both layers.
        if let Some(&id) = interner().read().expect("interner poisoned").map.get(name) {
            return Symbol(id);
        }
        if let Some(&id) = ov.symbols.map.get(name) {
            return Symbol(id);
        }
        if ov.sessions > 0 {
            let id = ov.symbols.alloc();
            ov.symbols.map.insert(name.to_owned(), id);
            ov.symbols.rev.insert(id, name.to_owned());
            return Symbol(id);
        }
        let mut i = interner().write().expect("interner poisoned");
        let id = i.names.len() as u32;
        assert!(id < OVERLAY_BASE, "symbol base table exhausted");
        i.names.push(name.to_owned());
        i.map.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the interned string for this symbol.
    ///
    /// The returned `String` is a clone; symbols themselves never expose
    /// references into the interner table. A symbol whose overlay
    /// generation has been reclaimed resolves to a `⟨reclaimed:N⟩`
    /// placeholder — by the pinning contract that only happens to symbols
    /// no live computation still cares about.
    pub fn as_str(self) -> String {
        if self.0 >= OVERLAY_BASE {
            let ov = overlay().read().expect("overlay poisoned");
            return match ov.symbols.rev.get(&self.0) {
                Some(name) => name.clone(),
                None => format!("⟨reclaimed:{}⟩", self.0),
            };
        }
        let i = interner().read().expect("interner poisoned");
        i.names[self.0 as usize].clone()
    }

    /// Returns a fresh symbol whose name starts with `prefix` and is distinct
    /// from every symbol interned so far (in either layer).
    ///
    /// Used by capture-avoiding substitution in the assertion layer.
    pub fn fresh(prefix: &str) -> Symbol {
        let mut n = {
            let base = interner().read().expect("interner poisoned").names.len();
            let over = overlay()
                .read()
                .expect("overlay poisoned")
                .symbols
                .map
                .len();
            base + over
        };
        loop {
            let candidate = format!("{prefix}#{n}");
            let exists = {
                interner()
                    .read()
                    .expect("interner poisoned")
                    .map
                    .contains_key(&candidate)
                    || overlay()
                        .read()
                        .expect("overlay poisoned")
                        .symbols
                        .map
                        .contains_key(&candidate)
            };
            if !exists {
                return Symbol::new(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Lock shards per term table: command interning sits on the memoized
/// extended-semantics hot path, where batch workers intern concurrently —
/// a single global lock would make every probe touch the same word.
const TERM_SHARDS: usize = 8;

/// One shard: the id map plus the interned terms in allocation order.
type TermShard<T> = RwLock<(HashMap<T, u32>, Vec<T>)>;

/// Selects a term kind's slice of the session [`Overlay`]. Implemented for
/// [`Cmd`] and [`Expr`] so [`TermTable`] can stay generic while both kinds
/// share one overlay lock.
trait OverlayKind: Sized + Clone + Eq + Hash {
    fn slot(ov: &mut Overlay) -> &mut TermOverlay<Self>;
    fn slot_ref(ov: &Overlay) -> &TermOverlay<Self>;
}

impl OverlayKind for Cmd {
    fn slot(ov: &mut Overlay) -> &mut TermOverlay<Cmd> {
        &mut ov.cmds
    }
    fn slot_ref(ov: &Overlay) -> &TermOverlay<Cmd> {
        &ov.cmds
    }
}

impl OverlayKind for Expr {
    fn slot(ov: &mut Overlay) -> &mut TermOverlay<Expr> {
        &mut ov.exprs
    }
    fn slot_ref(ov: &Overlay) -> &TermOverlay<Expr> {
        &ov.exprs
    }
}

/// A process-wide, sharded hash-consing table for one term type.
///
/// Base ids are allocated as `local_index * TERM_SHARDS + shard`, so they
/// are unique across shards and stable per term; overlay ids live at or
/// above [`OVERLAY_BASE`]. Each shard also keeps the interned terms in
/// allocation order, so an id resolves back to its term
/// ([`TermTable::lookup`]) — the memo-table snapshot serializer needs the
/// *exact* command behind a [`CmdId`], never a hash of it.
///
/// Like [`Symbol::new`], `intern` is double-checked: re-interning a term
/// already in the table — every `sem_memo` probe after the first — takes
/// only the shard's read lock, so warm batch workers never block each
/// other here.
struct TermTable<T> {
    shards: Vec<TermShard<T>>,
}

impl<T: OverlayKind> TermTable<T> {
    fn new() -> TermTable<T> {
        TermTable {
            shards: (0..TERM_SHARDS)
                .map(|_| RwLock::new((HashMap::new(), Vec::new())))
                .collect(),
        }
    }

    fn intern(&self, term: &T) -> u32 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut h);
        let idx = (h.finish() as usize) % TERM_SHARDS;
        if let Some(&id) = self.shards[idx]
            .read()
            .expect("term table poisoned")
            .0
            .get(term)
        {
            return id;
        }
        let mut ov = overlay().write().expect("overlay poisoned");
        // Base inserts only happen under the overlay lock (held here), so
        // re-checking the shard now closes the probe/insert race for good.
        if let Some(&id) = self.shards[idx]
            .read()
            .expect("term table poisoned")
            .0
            .get(term)
        {
            return id;
        }
        if let Some(&id) = T::slot_ref(&ov).map.get(term) {
            return id;
        }
        if ov.sessions > 0 {
            let slot = T::slot(&mut ov);
            let id = slot.alloc();
            slot.map.insert(term.clone(), id);
            slot.rev.insert(id, term.clone());
            return id;
        }
        let mut shard = self.shards[idx].write().expect("term table poisoned");
        let (map, rev) = &mut *shard;
        let id = rev.len() as u32 * TERM_SHARDS as u32 + idx as u32;
        assert!(id < OVERLAY_BASE, "term base table exhausted");
        map.insert(term.clone(), id);
        rev.push(term.clone());
        id
    }

    fn lookup(&self, id: u32) -> Option<T> {
        if id >= OVERLAY_BASE {
            let ov = overlay().read().expect("overlay poisoned");
            return T::slot_ref(&ov).rev.get(&id).cloned();
        }
        let shard = (id as usize) % TERM_SHARDS;
        let idx = (id as usize) / TERM_SHARDS;
        let guard = self.shards[shard].read().expect("term table poisoned");
        guard.1.get(idx).cloned()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("term table poisoned").1.len())
            .sum()
    }
}

/// A hash-consed command: two `CmdId`s are equal iff the commands they were
/// interned from are structurally equal.
///
/// # Examples
///
/// ```
/// use hhl_lang::{intern_cmd, parse_cmd};
/// let a = intern_cmd(&parse_cmd("x := 1; y := 2").unwrap());
/// let b = intern_cmd(&parse_cmd("x := 1 ; y := 2").unwrap());
/// let c = intern_cmd(&parse_cmd("x := 1; y := 3").unwrap());
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(u32);

/// A hash-consed expression: two `ExprId`s are equal iff the expressions
/// they were interned from are structurally equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

fn cmd_table() -> &'static TermTable<Cmd> {
    static TABLE: OnceLock<TermTable<Cmd>> = OnceLock::new();
    TABLE.get_or_init(TermTable::new)
}

fn expr_table() -> &'static TermTable<Expr> {
    static TABLE: OnceLock<TermTable<Expr>> = OnceLock::new();
    TABLE.get_or_init(TermTable::new)
}

/// Interns a command, returning its hash-consing id.
///
/// Idempotent and structural: syntactically equal commands (however they
/// were built) receive the same id for as long as that id's table
/// generation is live — the process lifetime for base ids, the enclosing
/// session's for overlay ids.
pub fn intern_cmd(cmd: &Cmd) -> CmdId {
    CmdId(cmd_table().intern(cmd))
}

/// Interns an expression, returning its hash-consing id.
pub fn intern_expr(expr: &Expr) -> ExprId {
    ExprId(expr_table().intern(expr))
}

/// Resolves a [`CmdId`] back to the command it was interned from.
///
/// Returns `None` for ids that were never produced by [`intern_cmd`] in
/// this process (ids are process-local and must not be persisted) and for
/// overlay ids whose session has been reclaimed.
pub(crate) fn cmd_of(id: CmdId) -> Option<Cmd> {
    cmd_table().lookup(id.0)
}

/// Resolves an [`ExprId`] back to the expression it was interned from.
///
/// Same contract as [`cmd_of`]: ids are process-local.
pub(crate) fn expr_of(id: ExprId) -> Option<Expr> {
    expr_table().lookup(id.0)
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("beta"), Symbol::new("gamma"));
    }

    #[test]
    fn fresh_symbols_are_new() {
        let x = Symbol::new("v");
        let f1 = Symbol::fresh("v");
        let f2 = Symbol::fresh("v");
        assert_ne!(x, f1);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with('v'));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "delta".into();
        let b: Symbol = String::from("delta").into();
        assert_eq!(a, b);
    }

    #[test]
    fn display_roundtrips() {
        let s = Symbol::new("display_me");
        assert_eq!(format!("{s}"), "display_me");
        assert!(format!("{s:?}").contains("display_me"));
    }

    #[test]
    fn cmd_interning_is_structural() {
        let a = Cmd::seq(Cmd::Skip, Cmd::havoc("x"));
        let b = Cmd::seq(Cmd::Skip, Cmd::havoc("x"));
        let c = Cmd::seq(Cmd::Skip, Cmd::havoc("y"));
        assert_eq!(intern_cmd(&a), intern_cmd(&b));
        assert_ne!(intern_cmd(&a), intern_cmd(&c));
        // Shared subterms get their own (stable) ids.
        assert_eq!(intern_cmd(&Cmd::havoc("x")), intern_cmd(&Cmd::havoc("x")));
    }

    #[test]
    fn cmd_ids_resolve_back_to_their_terms() {
        let c = Cmd::seq(Cmd::havoc("q"), Cmd::Skip);
        let id = intern_cmd(&c);
        assert_eq!(cmd_of(id), Some(c));
    }

    #[test]
    fn expr_interning_is_structural() {
        let e1 = Expr::var("x").gt(Expr::int(0));
        let e2 = Expr::var("x").gt(Expr::int(0));
        let e3 = Expr::var("x").gt(Expr::int(1));
        assert_eq!(intern_expr(&e1), intern_expr(&e2));
        assert_ne!(intern_expr(&e1), intern_expr(&e3));
    }

    // The session tests below all touch the process-global overlay, and
    // the test harness runs #[test] fns concurrently — so they share one
    // lock to keep their begin/assert/drop windows from interleaving.
    // (Other tests interning *base* symbols concurrently are harmless:
    // these tests only assert on overlay state they created themselves.)
    fn session_test_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[test]
    fn session_interning_is_consistent_and_reclaimed() {
        let _guard = session_test_lock().lock().unwrap();
        let base = Symbol::new("sess_base_before");
        let session = begin_session();
        // Base symbols stay resolvable and equal inside a session.
        assert_eq!(Symbol::new("sess_base_before"), base);
        // New names land in the overlay (idempotently) ...
        let s1 = Symbol::new("sess_only_name");
        let s2 = Symbol::new("sess_only_name");
        assert_eq!(s1, s2);
        assert_eq!(s1.as_str(), "sess_only_name");
        let sizes = intern_sizes();
        assert!(sizes.overlay_symbols >= 1);
        // ... and are reclaimed when the last session drops.
        drop(session);
        let sizes = intern_sizes();
        assert_eq!(sizes.overlay_symbols, 0);
        assert_eq!(sizes.overlay_cmds, 0);
        assert_eq!(sizes.overlay_exprs, 0);
        // The stale overlay id resolves to a placeholder, never a wrong
        // name, and re-interning mints a *different* (base) id.
        assert!(s1.as_str().contains("reclaimed"));
        let s3 = Symbol::new("sess_only_name");
        assert_ne!(s1, s3);
        assert_eq!(s3.as_str(), "sess_only_name");
    }

    #[test]
    fn session_terms_are_isolated_from_the_base_tables() {
        let _guard = session_test_lock().lock().unwrap();
        let before = intern_sizes();
        let session = begin_session();
        let cmd = Cmd::seq(Cmd::havoc("sess_term_x"), Cmd::havoc("sess_term_y"));
        let id = intern_cmd(&cmd);
        assert_eq!(intern_cmd(&cmd), id);
        assert_eq!(cmd_of(id), Some(cmd.clone()));
        drop(session);
        // Base tables did not grow; the overlay is empty again; the stale
        // id resolves to nothing rather than to somebody else's term.
        let after = intern_sizes();
        assert_eq!(after.cmds, before.cmds);
        assert_eq!(after.overlay_cmds, 0);
        assert_eq!(cmd_of(id), None);
        // Re-interning after the session goes to the base table with a
        // fresh id — the reclaimed id is never reused.
        let id2 = intern_cmd(&cmd);
        assert_ne!(id, id2);
        assert_eq!(cmd_of(id2), Some(cmd));
    }

    #[test]
    fn pins_defer_reclamation() {
        let _guard = session_test_lock().lock().unwrap();
        let session = begin_session();
        let pin = pin_interner();
        let s = Symbol::new("sess_pinned_name");
        drop(session);
        // The pin keeps the overlay alive: the symbol still resolves and
        // re-interning returns the same id.
        assert_eq!(s.as_str(), "sess_pinned_name");
        assert_eq!(Symbol::new("sess_pinned_name"), s);
        drop(pin);
        assert_eq!(intern_sizes().overlay_symbols, 0);
    }
}
