//! Global string interning for variable names.
//!
//! Program variables (`PVars`) and logical variables (`LVars`) are referenced
//! pervasively — in states, expressions, commands and hyper-assertions — so we
//! intern them once into a compact [`Symbol`] and compare by id.
//!
//! The interner is a process-wide table guarded by a mutex; interning is
//! performed once per distinct name, after which all operations are `Copy`
//! comparisons.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned variable name.
///
/// `Symbol`s are cheap to copy and compare. Two symbols are equal iff they
/// were interned from equal strings. Ordering is by interning order, which is
/// stable within a process and sufficient for the canonical (deterministic)
/// state representations used throughout the workspace.
///
/// # Examples
///
/// ```
/// use hhl_lang::Symbol;
/// let x = Symbol::new("x");
/// assert_eq!(x, Symbol::new("x"));
/// assert_ne!(x, Symbol::new("y"));
/// assert_eq!(x.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    ///
    /// Idempotent: interning the same string twice yields the same symbol.
    pub fn new(name: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = i.names.len() as u32;
        i.names.push(name.to_owned());
        i.map.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the interned string for this symbol.
    ///
    /// The returned `String` is a clone; symbols themselves never expose
    /// references into the interner table.
    pub fn as_str(self) -> String {
        let i = interner().lock().expect("interner poisoned");
        i.names[self.0 as usize].clone()
    }

    /// Returns a fresh symbol whose name starts with `prefix` and is distinct
    /// from every symbol interned so far.
    ///
    /// Used by capture-avoiding substitution in the assertion layer.
    pub fn fresh(prefix: &str) -> Symbol {
        let mut n = {
            let i = interner().lock().expect("interner poisoned");
            i.names.len()
        };
        loop {
            let candidate = format!("{prefix}#{n}");
            let exists = {
                let i = interner().lock().expect("interner poisoned");
                i.map.contains_key(&candidate)
            };
            if !exists {
                return Symbol::new(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("beta"), Symbol::new("gamma"));
    }

    #[test]
    fn fresh_symbols_are_new() {
        let x = Symbol::new("v");
        let f1 = Symbol::fresh("v");
        let f2 = Symbol::fresh("v");
        assert_ne!(x, f1);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with('v'));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "delta".into();
        let b: Symbol = String::from("delta").into();
        assert_eq!(a, b);
    }

    #[test]
    fn display_roundtrips() {
        let s = Symbol::new("display_me");
        assert_eq!(format!("{s}"), "display_me");
        assert!(format!("{s:?}").contains("display_me"));
    }
}
