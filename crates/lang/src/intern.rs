//! Global interning for variable names and hash-consing of program terms.
//!
//! Program variables (`PVars`) and logical variables (`LVars`) are referenced
//! pervasively — in states, expressions, commands and hyper-assertions — so we
//! intern them once into a compact [`Symbol`] and compare by id.
//!
//! The same table-based scheme hash-conses whole commands and expressions:
//! [`CmdId`] and [`ExprId`] assign each structurally distinct term a compact,
//! process-stable id, so structural equality becomes an integer comparison.
//! The extended-semantics memo table ([`crate::memo::SemCache`]) keys its
//! entries on `CmdId`, which makes "the same subprogram seen again" — a loop
//! unrolling, a shared prefix across triples, a repeated WP premise — a
//! constant-time cache hit instead of a deep tree compare.
//!
//! All interners are process-wide tables guarded by reader-writer locks
//! with a double-checked write path: looking up an already-interned name
//! or term — the steady state once a batch is warm — takes only a shared
//! read lock, so concurrent workers never serialize behind each other.
//! Interning itself (the write lock) happens once per distinct term.
//!
//! **Memory contract:** interned terms are retained (cloned into the
//! table) for the lifetime of the process — there is no eviction, because
//! ids must stay stable. This is sized for CLI-shaped lifetimes (one batch
//! per process); a long-lived embedder interning unboundedly many
//! *distinct* programs should intern at a coarse granularity (whole specs,
//! not generated variants) or accept the proportional footprint.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

use crate::cmd::Cmd;
use crate::expr::Expr;

/// An interned variable name.
///
/// `Symbol`s are cheap to copy and compare. Two symbols are equal iff they
/// were interned from equal strings. Ordering is by interning order, which is
/// stable within a process and sufficient for the canonical (deterministic)
/// state representations used throughout the workspace.
///
/// # Examples
///
/// ```
/// use hhl_lang::Symbol;
/// let x = Symbol::new("x");
/// assert_eq!(x, Symbol::new("x"));
/// assert_ne!(x, Symbol::new("y"));
/// assert_eq!(x.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    ///
    /// Idempotent: interning the same string twice yields the same symbol.
    /// Already-interned names — every lookup after the first — are resolved
    /// under a shared read lock; only a genuinely new name takes the write
    /// lock, re-checking under it in case a racing thread interned the same
    /// name between the two acquisitions.
    pub fn new(name: &str) -> Symbol {
        if let Some(&id) = interner().read().expect("interner poisoned").map.get(name) {
            return Symbol(id);
        }
        let mut i = interner().write().expect("interner poisoned");
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = i.names.len() as u32;
        i.names.push(name.to_owned());
        i.map.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the interned string for this symbol.
    ///
    /// The returned `String` is a clone; symbols themselves never expose
    /// references into the interner table.
    pub fn as_str(self) -> String {
        let i = interner().read().expect("interner poisoned");
        i.names[self.0 as usize].clone()
    }

    /// Returns a fresh symbol whose name starts with `prefix` and is distinct
    /// from every symbol interned so far.
    ///
    /// Used by capture-avoiding substitution in the assertion layer.
    pub fn fresh(prefix: &str) -> Symbol {
        let mut n = {
            let i = interner().read().expect("interner poisoned");
            i.names.len()
        };
        loop {
            let candidate = format!("{prefix}#{n}");
            let exists = {
                let i = interner().read().expect("interner poisoned");
                i.map.contains_key(&candidate)
            };
            if !exists {
                return Symbol::new(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Lock shards per term table: command interning sits on the memoized
/// extended-semantics hot path, where batch workers intern concurrently —
/// a single global lock would make every probe touch the same word.
const TERM_SHARDS: usize = 8;

/// One shard: the id map plus the interned terms in allocation order.
type TermShard<T> = RwLock<(HashMap<T, u32>, Vec<T>)>;

/// A process-wide, sharded hash-consing table for one term type.
///
/// Ids are allocated as `local_index * TERM_SHARDS + shard`, so they are
/// unique across shards and stable per term. Each shard also keeps the
/// interned terms in allocation order, so an id resolves back to its term
/// ([`TermTable::lookup`]) — the memo-table snapshot serializer needs the
/// *exact* command behind a [`CmdId`], never a hash of it.
///
/// Like [`Symbol::new`], `intern` is double-checked: re-interning a term
/// already in the table — every `sem_memo` probe after the first — takes
/// only the shard's read lock, so warm batch workers never block each
/// other here.
struct TermTable<T> {
    shards: Vec<TermShard<T>>,
}

impl<T: Clone + Eq + Hash> TermTable<T> {
    fn new() -> TermTable<T> {
        TermTable {
            shards: (0..TERM_SHARDS)
                .map(|_| RwLock::new((HashMap::new(), Vec::new())))
                .collect(),
        }
    }

    fn intern(&self, term: &T) -> u32 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut h);
        let idx = (h.finish() as usize) % TERM_SHARDS;
        if let Some(&id) = self.shards[idx]
            .read()
            .expect("term table poisoned")
            .0
            .get(term)
        {
            return id;
        }
        let mut shard = self.shards[idx].write().expect("term table poisoned");
        let (map, rev) = &mut *shard;
        if let Some(&id) = map.get(term) {
            return id;
        }
        let id = rev.len() as u32 * TERM_SHARDS as u32 + idx as u32;
        map.insert(term.clone(), id);
        rev.push(term.clone());
        id
    }

    fn lookup(&self, id: u32) -> Option<T> {
        let shard = (id as usize) % TERM_SHARDS;
        let idx = (id as usize) / TERM_SHARDS;
        let guard = self.shards[shard].read().expect("term table poisoned");
        guard.1.get(idx).cloned()
    }
}

/// A hash-consed command: two `CmdId`s are equal iff the commands they were
/// interned from are structurally equal.
///
/// # Examples
///
/// ```
/// use hhl_lang::{intern_cmd, parse_cmd};
/// let a = intern_cmd(&parse_cmd("x := 1; y := 2").unwrap());
/// let b = intern_cmd(&parse_cmd("x := 1 ; y := 2").unwrap());
/// let c = intern_cmd(&parse_cmd("x := 1; y := 3").unwrap());
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(u32);

/// A hash-consed expression: two `ExprId`s are equal iff the expressions
/// they were interned from are structurally equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

fn cmd_table() -> &'static TermTable<Cmd> {
    static TABLE: OnceLock<TermTable<Cmd>> = OnceLock::new();
    TABLE.get_or_init(TermTable::new)
}

fn expr_table() -> &'static TermTable<Expr> {
    static TABLE: OnceLock<TermTable<Expr>> = OnceLock::new();
    TABLE.get_or_init(TermTable::new)
}

/// Interns a command, returning its hash-consing id.
///
/// Idempotent and structural: syntactically equal commands (however they
/// were built) receive the same id for the lifetime of the process.
pub fn intern_cmd(cmd: &Cmd) -> CmdId {
    CmdId(cmd_table().intern(cmd))
}

/// Interns an expression, returning its hash-consing id.
pub fn intern_expr(expr: &Expr) -> ExprId {
    ExprId(expr_table().intern(expr))
}

/// Resolves a [`CmdId`] back to the command it was interned from.
///
/// Returns `None` only for ids that were never produced by [`intern_cmd`]
/// in this process (ids are process-local and must not be persisted).
pub(crate) fn cmd_of(id: CmdId) -> Option<Cmd> {
    cmd_table().lookup(id.0)
}

/// Resolves an [`ExprId`] back to the expression it was interned from.
///
/// Same contract as [`cmd_of`]: ids are process-local.
pub(crate) fn expr_of(id: ExprId) -> Option<Expr> {
    expr_table().lookup(id.0)
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("beta"), Symbol::new("gamma"));
    }

    #[test]
    fn fresh_symbols_are_new() {
        let x = Symbol::new("v");
        let f1 = Symbol::fresh("v");
        let f2 = Symbol::fresh("v");
        assert_ne!(x, f1);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with('v'));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "delta".into();
        let b: Symbol = String::from("delta").into();
        assert_eq!(a, b);
    }

    #[test]
    fn display_roundtrips() {
        let s = Symbol::new("display_me");
        assert_eq!(format!("{s}"), "display_me");
        assert!(format!("{s:?}").contains("display_me"));
    }

    #[test]
    fn cmd_interning_is_structural() {
        let a = Cmd::seq(Cmd::Skip, Cmd::havoc("x"));
        let b = Cmd::seq(Cmd::Skip, Cmd::havoc("x"));
        let c = Cmd::seq(Cmd::Skip, Cmd::havoc("y"));
        assert_eq!(intern_cmd(&a), intern_cmd(&b));
        assert_ne!(intern_cmd(&a), intern_cmd(&c));
        // Shared subterms get their own (stable) ids.
        assert_eq!(intern_cmd(&Cmd::havoc("x")), intern_cmd(&Cmd::havoc("x")));
    }

    #[test]
    fn cmd_ids_resolve_back_to_their_terms() {
        let c = Cmd::seq(Cmd::havoc("q"), Cmd::Skip);
        let id = intern_cmd(&c);
        assert_eq!(cmd_of(id), Some(c));
    }

    #[test]
    fn expr_interning_is_structural() {
        let e1 = Expr::var("x").gt(Expr::int(0));
        let e2 = Expr::var("x").gt(Expr::int(0));
        let e3 = Expr::var("x").gt(Expr::int(1));
        assert_eq!(intern_expr(&e1), intern_expr(&e2));
        assert_ne!(intern_expr(&e1), intern_expr(&e3));
    }
}
