//! Shared machinery for the embedded logics of Appendix C.
//!
//! The judgments of HL/CHL/IL/k-IL/FU/k-FU/k-UE (Defs. 16–22) quantify over
//! extended states and `k`-tuples of extended states. Over the finite
//! universes of this reproduction both are enumerable, which makes each
//! judgment directly checkable — these direct checkers are the *baselines*
//! against which the App. C translations into hyper-triples are validated
//! (Props. 2, 4, 6, 8, 9, 11, 13).

use std::collections::BTreeSet;
use std::rc::Rc;

use hhl_lang::{Cmd, ExecConfig, ExtState};

/// A set of extended states used as an HL/IL/FU pre- or postcondition
/// (Defs. 16, 18, 20 take `P`, `Q` to be sets of extended states).
pub type StateSetPred = BTreeSet<ExtState>;

/// A predicate over `k`-tuples of extended states (Defs. 17, 19, 21, 22).
pub type TuplePred = Rc<dyn Fn(&[ExtState]) -> bool>;

/// Builds a [`TuplePred`] from a closure.
pub fn tuple_pred<F: Fn(&[ExtState]) -> bool + 'static>(f: F) -> TuplePred {
    Rc::new(f)
}

/// The lifted `k`-execution relation `⟨C, #φ⟩ →ᵏ #φ'` (App. C.1): each
/// component executes independently; logical stores are preserved.
///
/// Returns all result tuples reachable from `tuple`.
pub fn k_exec(cmd: &Cmd, tuple: &[ExtState], exec: &ExecConfig) -> Vec<Vec<ExtState>> {
    let mut results: Vec<Vec<ExtState>> = vec![Vec::new()];
    for phi in tuple {
        let succs: Vec<ExtState> = exec
            .exec(cmd, &phi.program)
            .into_iter()
            .map(|sigma| ExtState::new(phi.logical.clone(), sigma))
            .collect();
        let mut next = Vec::with_capacity(results.len() * succs.len());
        for partial in &results {
            for s in &succs {
                let mut p2 = partial.clone();
                p2.push(s.clone());
                next.push(p2);
            }
        }
        results = next;
    }
    results
}

/// Enumerates all `k`-tuples over the universe (with repetition).
pub fn k_tuples(universe: &[ExtState], k: usize) -> Vec<Vec<ExtState>> {
    let mut out: Vec<Vec<ExtState>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * universe.len());
        for partial in &out {
            for st in universe {
                let mut p2 = partial.clone();
                p2.push(st.clone());
                next.push(p2);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhl_lang::{parse_cmd, Store, Value};

    fn st(x: i64) -> ExtState {
        ExtState::from_program(Store::from_pairs([("x", Value::Int(x))]))
    }

    #[test]
    fn k_exec_is_componentwise() {
        let cmd = parse_cmd("x := x + 1").unwrap();
        let exec = ExecConfig::default();
        let outs = k_exec(&cmd, &[st(0), st(5)], &exec);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0], vec![st(1), st(6)]);
    }

    #[test]
    fn k_exec_branches_multiply() {
        let cmd = parse_cmd("{ x := 1 } + { x := 2 }").unwrap();
        let exec = ExecConfig::default();
        let outs = k_exec(&cmd, &[st(0), st(0)], &exec);
        assert_eq!(outs.len(), 4); // 2 × 2 branch combinations
    }

    #[test]
    fn k_exec_preserves_logical_store() {
        let cmd = parse_cmd("x := 0").unwrap();
        let exec = ExecConfig::default();
        let mut tagged = st(3);
        tagged.logical.set("t", Value::Int(1));
        let outs = k_exec(&cmd, &[tagged], &exec);
        assert_eq!(outs[0][0].logical.get("t"), Value::Int(1));
    }

    #[test]
    fn k_tuples_counts() {
        let u = vec![st(0), st(1), st(2)];
        assert_eq!(k_tuples(&u, 2).len(), 9);
        assert_eq!(k_tuples(&u, 0).len(), 1);
    }

    #[test]
    fn k_exec_empty_on_stuck() {
        let cmd = parse_cmd("assume false").unwrap();
        let exec = ExecConfig::default();
        assert!(k_exec(&cmd, &[st(0)], &exec).is_empty());
    }
}
