//! # hhl-logics — the comparison logics of Appendix C and Fig. 1
//!
//! Executable judgments for the Hoare logics the paper compares against,
//! each implemented directly from its definition, plus the App. C
//! translations into hyper-triples and the Fig. 1 capability matrix:
//!
//! | Logic | Definition | Direct checker | Translation |
//! |-------|------------|----------------|-------------|
//! | Hoare Logic | Def. 16 | [`hl_valid`] | Prop. 2, [`hl_as_hyper_triple`] |
//! | Cartesian HL (k) | Def. 17 | [`chl_valid`] | Prop. 4, [`chl_as_hyper_triple`] |
//! | Incorrectness Logic | Def. 18 | [`il_valid`] | Prop. 6, [`il_as_hyper_triple`] |
//! | k-Incorrectness Logic | Def. 19 | [`kil_valid`] | Prop. 8 (via Thm. 3) |
//! | Forward Underapprox. | Def. 20 | [`fu_valid`] | Prop. 9, [`fu_as_hyper_triple`] |
//! | k-FU | Def. 21 | [`kfu_valid`] | Prop. 11, [`kfu_as_hyper_triple`] |
//! | k-UE (RHLE) | Def. 22 | [`kue_valid`] | Prop. 13, [`kue_as_hyper_triple`] |
//!
//! The property-test suite validates each translation proposition as an
//! equivalence between the direct judgment and hyper-triple validity over
//! shared finite universes.
//!
//! # Example
//!
//! ```
//! use hhl_logics::{il_valid, StateSetPred};
//! use hhl_lang::{parse_cmd, ExecConfig, ExtState, Store, Value};
//!
//! // Incorrectness Logic: the "bug state" x = 2 is genuinely reachable.
//! let st = |x: i64| ExtState::from_program(Store::from_pairs([("x", Value::Int(x))]));
//! let p: StateSetPred = [st(0)].into_iter().collect();
//! let bug: StateSetPred = [st(2)].into_iter().collect();
//! let cmd = parse_cmd("x := nonDet()").unwrap();
//! assert!(il_valid(&p, &cmd, &bug, &ExecConfig::int_range(0, 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod matrix;
mod overapprox;
mod ue;
mod underapprox;

pub use common::{k_exec, k_tuples, tuple_pred, StateSetPred, TuplePred};
pub use matrix::{fig1_matrix, render_matrix, Cell, ExecCount, PropertyClass};
pub use overapprox::{chl_as_hyper_triple, chl_valid, hl_as_hyper_triple, hl_valid};
pub use ue::{kue_as_hyper_triple, kue_valid};
pub use underapprox::{
    fu_as_hyper_triple, fu_valid, il_as_hyper_triple, il_valid, kfu_as_hyper_triple, kfu_valid,
    kil_valid,
};
