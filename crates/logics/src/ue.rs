//! k-Universal-Existential triples (Def. 22) — the RHLE fragment for a
//! single command — and their translation (Prop. 13).

use hhl_core::semantic::{sem, SemTriple};
use hhl_lang::{Cmd, ExecConfig, ExtState, StateSet, Symbol, Value};

use crate::common::{k_exec, k_tuples, TuplePred};

/// k-UE validity (Def. 22): for all `(#φ, #γ) ∈ P` and all results `#φ'` of
/// the `k1` universal executions, there exist results `#γ'` of the `k2`
/// existential executions with `(#φ', #γ') ∈ Q`.
pub fn kue_valid(
    k1: usize,
    k2: usize,
    p: &TuplePred,
    cmd: &Cmd,
    q: &TuplePred,
    universe: &[ExtState],
    exec: &ExecConfig,
) -> bool {
    k_tuples(universe, k1 + k2).into_iter().all(|tuple| {
        if !p(&tuple) {
            return true;
        }
        let (phis, gammas) = tuple.split_at(k1);
        k_exec(cmd, phis, exec).into_iter().all(|phi_out| {
            k_exec(cmd, gammas, exec).into_iter().any(|gamma_out| {
                let mut combined = phi_out.clone();
                combined.extend(gamma_out);
                q(&combined)
            })
        })
    })
}

/// Prop. 13: the hyper-triple expressing a k-UE triple. States carry two
/// logical tags: `t` (slot index) and `u` (1 = universal, 2 = existential).
///
/// `Q' ≜ ∀#φ'. T1(#φ') ⇒ ∃#γ'. T2(#γ') ∧ (#φ', #γ') ∈ Q` where `Tₙ`
/// collects tagged states from the set.
pub fn kue_as_hyper_triple(
    k1: usize,
    k2: usize,
    p: TuplePred,
    cmd: Cmd,
    q: TuplePred,
    t: Symbol,
    u: Symbol,
) -> SemTriple {
    let pre = {
        let p = p.clone();
        sem(move |s: &StateSet| {
            // (∀i. ∃⟨φ⟩. φ_L(t) = i ∧ φ_L(u) = 2) ∧
            // (∀#φ, #γ. T1(#φ) ∧ T2(#γ) ⇒ (#φ, #γ) ∈ P)
            let exists_tagged = (1..=k2).all(|i| {
                s.iter().any(|phi| {
                    phi.logical.get(t) == Value::Int(i as i64)
                        && phi.logical.get(u) == Value::Int(2)
                })
            });
            exists_tagged
                && for_all_tagged(s, k1, t, u, 1, &mut Vec::new(), &mut |phis| {
                    for_all_tagged(s, k2, t, u, 2, &mut phis.to_vec(), &mut |all| p(all))
                })
        })
    };
    let post = sem(move |s: &StateSet| {
        for_all_tagged(s, k1, t, u, 1, &mut Vec::new(), &mut |phis| {
            exists_tagged_tuple(s, k2, t, u, 2, &mut phis.to_vec(), &mut |all| q(all))
        })
    });
    SemTriple::new(pre, cmd, post)
}

fn slot_states(s: &StateSet, t: Symbol, u: Symbol, i: usize, kind: i64) -> Vec<ExtState> {
    s.iter()
        .filter(|phi| {
            phi.logical.get(t) == Value::Int(i as i64) && phi.logical.get(u) == Value::Int(kind)
        })
        .cloned()
        .collect()
}

fn for_all_tagged(
    s: &StateSet,
    k: usize,
    t: Symbol,
    u: Symbol,
    kind: i64,
    acc: &mut Vec<ExtState>,
    pred: &mut dyn FnMut(&[ExtState]) -> bool,
) -> bool {
    let base = acc.len();
    #[allow(clippy::too_many_arguments)] // recursion helper threading the full search state
    fn go(
        s: &StateSet,
        k: usize,
        i: usize,
        t: Symbol,
        u: Symbol,
        kind: i64,
        acc: &mut Vec<ExtState>,
        pred: &mut dyn FnMut(&[ExtState]) -> bool,
    ) -> bool {
        if i > k {
            return pred(acc);
        }
        slot_states(s, t, u, i, kind).into_iter().all(|phi| {
            acc.push(phi);
            let ok = go(s, k, i + 1, t, u, kind, acc, pred);
            acc.pop();
            ok
        })
    }
    let ok = go(s, k, 1, t, u, kind, acc, pred);
    acc.truncate(base);
    ok
}

fn exists_tagged_tuple(
    s: &StateSet,
    k: usize,
    t: Symbol,
    u: Symbol,
    kind: i64,
    acc: &mut Vec<ExtState>,
    pred: &mut dyn FnMut(&[ExtState]) -> bool,
) -> bool {
    let base = acc.len();
    #[allow(clippy::too_many_arguments)] // recursion helper threading the full search state
    fn go(
        s: &StateSet,
        k: usize,
        i: usize,
        t: Symbol,
        u: Symbol,
        kind: i64,
        acc: &mut Vec<ExtState>,
        pred: &mut dyn FnMut(&[ExtState]) -> bool,
    ) -> bool {
        if i > k {
            return pred(acc);
        }
        slot_states(s, t, u, i, kind).into_iter().any(|phi| {
            acc.push(phi);
            let ok = go(s, k, i + 1, t, u, kind, acc, pred);
            acc.pop();
            ok
        })
    }
    let ok = go(s, k, 1, t, u, kind, acc, pred);
    acc.truncate(base);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tuple_pred;
    use hhl_lang::{parse_cmd, Store};

    fn mk(h: i64, l: i64) -> ExtState {
        ExtState::from_program(Store::from_pairs([
            ("h", Value::Int(h)),
            ("l", Value::Int(l)),
        ]))
    }

    #[test]
    fn kue_expresses_gni() {
        // GNI as a (1+1)-UE judgment over the XOR one-time pad (the finite
        // stand-in for C3, see hhl-core): for every universal run there is
        // an existential run with the same h as γ and the same l output.
        let universe: Vec<ExtState> = (0..=1).map(|h| mk(h, 0)).collect();
        let exec = ExecConfig::int_range(0, 1);
        // P: γ and φ start with equal l (low inputs agree).
        let p = tuple_pred(|t: &[ExtState]| t[0].program.get("l") == t[1].program.get("l"));
        // Q over (φ', γ'): γ' has γ's h and φ's l output.
        let q = tuple_pred(|t: &[ExtState]| t[1].program.get("l") == t[0].program.get("l"));
        let otp = parse_cmd("y := nonDet(); l := h ^ y").unwrap();
        assert!(kue_valid(1, 1, &p, &otp, &q, &universe, &exec));
        // The leaky direct copy fails: no existential run of h=0 can match
        // the l = 1 output of the h=1 universal run while keeping its own h.
        let q_strict = tuple_pred(|t: &[ExtState]| {
            t[1].program.get("l") == t[0].program.get("l")
                && t[1].program.get("h") != t[0].program.get("h")
        });
        let leak = parse_cmd("l := h").unwrap();
        assert!(!kue_valid(1, 1, &p, &leak, &q_strict, &universe, &exec));
    }

    #[test]
    fn prop13_kue_agrees_with_hyper_triple() {
        use hhl_assert::{EntailConfig, Universe};
        use hhl_core::semantic::sem_valid;

        let t = Symbol::new("t");
        let u = Symbol::new("u");
        // Universe: x ∈ {0,1}, tagged with t = 1 and u ∈ {1, 2}.
        let base = Universe::int_cube(&["x"], 0, 1);
        let mut tagged_states = Vec::new();
        for st in &base.states {
            for kind in [1i64, 2] {
                tagged_states.push(
                    st.with_logical(t, Value::Int(1))
                        .with_logical(u, Value::Int(kind)),
                );
            }
        }
        let tagged = Universe::from_states(tagged_states.clone());
        let exec = ExecConfig::int_range(0, 1);
        let cfg = EntailConfig {
            max_subset_size: 4,
            ..EntailConfig::default()
        };
        // (1+1)-UE with equal-input precondition.
        let p = tuple_pred(|t: &[ExtState]| t[0].program.get("x") == t[1].program.get("x"));
        let q_eq = tuple_pred(|t: &[ExtState]| t[0].program.get("x") == t[1].program.get("x"));
        let q_ne = tuple_pred(|t: &[ExtState]| t[0].program.get("x") != t[1].program.get("x"));
        for (src, q, expect) in [
            // Deterministic increment: existential mirrors universal.
            ("x := x + 1", q_eq.clone(), true),
            // The existential havoc can always match the universal one.
            ("x := nonDet()", q_eq.clone(), true),
            // Deterministic outputs cannot differ from themselves.
            ("x := x + 1", q_ne.clone(), false),
        ] {
            let cmd = parse_cmd(src).unwrap();
            let direct = kue_valid(1, 1, &p, &cmd, &q, &tagged_states, &exec);
            let triple = kue_as_hyper_triple(1, 1, p.clone(), cmd, q, t, u);
            let hyper = sem_valid(&triple, &tagged, &exec, &cfg);
            assert_eq!(direct, hyper, "Prop. 13 mismatch for {src}");
            assert_eq!(direct, expect, "k-UE status for {src}");
        }
    }
}
