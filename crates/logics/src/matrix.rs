//! The Fig. 1 capability matrix: which Hoare logics can establish which
//! classes of hyperproperties, for how many executions.
//!
//! The matrix reproduces the paper's table verbatim and annotates each cell
//! that Hyper Hoare Logic covers with the module/test in this repository
//! that *demonstrates* the coverage executably. The `fig01_matrix` binary in
//! `hhl-bench` renders it.

/// A row class of Fig. 1: the type of property a logic establishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropertyClass {
    /// Overapproximate (hypersafety) properties.
    Overapproximate,
    /// Backward underapproximate properties (IL-style reachability).
    BackwardUnderapprox,
    /// Forward underapproximate properties (OL/RHLE-style).
    ForwardUnderapprox,
    /// `∀*∃*`-hyperproperties (e.g. GNI).
    ForallExists,
    /// `∃*∀*`-hyperproperties (e.g. GNI violations).
    ExistsForall,
    /// Properties of the set itself (cardinalities, means — App. B).
    SetProperties,
}

impl PropertyClass {
    /// All classes, in the paper's row order.
    pub fn all() -> [PropertyClass; 6] {
        [
            PropertyClass::Overapproximate,
            PropertyClass::BackwardUnderapprox,
            PropertyClass::ForwardUnderapprox,
            PropertyClass::ForallExists,
            PropertyClass::ExistsForall,
            PropertyClass::SetProperties,
        ]
    }

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            PropertyClass::Overapproximate => "Overapproximate (hypersafety)",
            PropertyClass::BackwardUnderapprox => "Backward underapproximate",
            PropertyClass::ForwardUnderapprox => "Forward underapproximate",
            PropertyClass::ForallExists => "∀*∃*",
            PropertyClass::ExistsForall => "∃*∀*",
            PropertyClass::SetProperties => "Set properties",
        }
    }
}

/// A column of Fig. 1: how many executions the property relates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecCount {
    /// A single execution.
    One,
    /// Exactly two executions.
    Two,
    /// A fixed number `k` of executions.
    K,
    /// Unboundedly / infinitely many executions.
    Unbounded,
}

impl ExecCount {
    /// All columns, in the paper's order.
    pub fn all() -> [ExecCount; 4] {
        [
            ExecCount::One,
            ExecCount::Two,
            ExecCount::K,
            ExecCount::Unbounded,
        ]
    }

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            ExecCount::One => "1",
            ExecCount::Two => "2",
            ExecCount::K => "k",
            ExecCount::Unbounded => "∞",
        }
    }
}

/// One cell of the Fig. 1 matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Row.
    pub class: PropertyClass,
    /// Column.
    pub execs: ExecCount,
    /// Whether the combination is meaningful (the paper marks `∀*∃*` and
    /// `∃*∀*` as "not applicable" for one execution, and set properties for
    /// any fixed count).
    pub applicable: bool,
    /// The prior logics the paper lists as covering the cell.
    pub prior_logics: &'static [&'static str],
    /// Whether Hyper Hoare Logic covers the cell (always true when
    /// applicable — the paper's green checkmarks).
    pub hhl: bool,
    /// The artifact in this repository demonstrating the cell.
    pub demo: &'static str,
}

/// The full Fig. 1 matrix.
pub fn fig1_matrix() -> Vec<Cell> {
    use ExecCount::*;
    use PropertyClass::*;
    let cell =
        |class, execs, applicable, prior_logics: &'static [&'static str], demo: &'static str| {
            Cell {
                class,
                execs,
                applicable,
                prior_logics,
                hhl: applicable,
                demo,
            }
        };
    vec![
        cell(
            Overapproximate,
            One,
            true,
            &["HL", "OL", "RHL", "CHL", "RHLE", "MHRM", "BiKAT"],
            "hhl-logics::overapprox (Prop. 2), examples/quickstart.rs (P1)",
        ),
        cell(
            Overapproximate,
            Two,
            true,
            &["RHL", "CHL", "RHLE", "MHRM", "BiKAT"],
            "hhl-logics::overapprox (Prop. 4, monotonicity), Assertion::low",
        ),
        cell(
            Overapproximate,
            K,
            true,
            &["CHL", "RHLE"],
            "hhl-logics::overapprox::chl_valid for arbitrary k",
        ),
        cell(
            Overapproximate,
            Unbounded,
            true,
            &[],
            "examples/quantitative_flow.rs (App. B upper bound)",
        ),
        cell(
            BackwardUnderapprox,
            One,
            true,
            &["IL", "InSec", "BiKAT"],
            "hhl-logics::underapprox (Prop. 6)",
        ),
        cell(
            BackwardUnderapprox,
            Two,
            true,
            &["InSec", "BiKAT"],
            "hhl-logics::underapprox::kil_valid (k = 2)",
        ),
        cell(
            BackwardUnderapprox,
            K,
            true,
            &[],
            "hhl-logics::underapprox::kil_valid for arbitrary k",
        ),
        cell(
            BackwardUnderapprox,
            Unbounded,
            true,
            &[],
            "Assertion::exact_set (Thm. 5)",
        ),
        cell(
            ForwardUnderapprox,
            One,
            true,
            &["OL", "RHLE", "MHRM", "BiKAT"],
            "hhl-logics::underapprox (Prop. 9), examples/quickstart.rs (P2)",
        ),
        cell(
            ForwardUnderapprox,
            Two,
            true,
            &["RHLE", "MHRM", "BiKAT"],
            "hhl-logics::underapprox::kfu_valid (insecurity of C2)",
        ),
        cell(
            ForwardUnderapprox,
            K,
            true,
            &["RHLE"],
            "hhl-logics::underapprox (Prop. 11) for arbitrary k",
        ),
        cell(
            ForwardUnderapprox,
            Unbounded,
            true,
            &[],
            "§2.1 P2 with unbounded n",
        ),
        cell(ForallExists, One, false, &[], "not applicable"),
        cell(
            ForallExists,
            Two,
            true,
            &["RHLE", "MHRM", "BiKAT"],
            "Assertion::gni, validity::gni_for_c3 test",
        ),
        cell(
            ForallExists,
            K,
            true,
            &["RHLE"],
            "hhl-logics::ue (Prop. 13) for arbitrary k1 + k2",
        ),
        cell(
            ForallExists,
            Unbounded,
            true,
            &[],
            "While-∀*∃* rule (Fig. 6 proof)",
        ),
        cell(ExistsForall, One, false, &[], "not applicable"),
        cell(
            ExistsForall,
            Two,
            true,
            &["BiKAT"],
            "Assertion::gni_violation, Fig. 4 proof (proof::tests)",
        ),
        cell(
            ExistsForall,
            K,
            true,
            &[],
            "While-∃ rule, examples/minimum.rs (Fig. 8)",
        ),
        cell(
            ExistsForall,
            Unbounded,
            true,
            &[],
            "Assertion::has_min over any set",
        ),
        cell(SetProperties, One, false, &[], "not applicable"),
        cell(SetProperties, Two, false, &[], "not applicable"),
        cell(SetProperties, K, false, &[], "not applicable"),
        cell(
            SetProperties,
            Unbounded,
            true,
            &[],
            "Assertion::Card, examples/quantitative_flow.rs (App. B)",
        ),
    ]
}

/// Renders the matrix as an aligned text table (the `fig01_matrix` binary's
/// output).
pub fn render_matrix() -> String {
    let cells = fig1_matrix();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:<4} {:<7} {:<40} {}\n",
        "Property class", "#ex", "HHL", "Prior logics", "Demonstrated by"
    ));
    out.push_str(&"-".repeat(130));
    out.push('\n');
    for c in &cells {
        let hhl = if !c.applicable {
            "n/a"
        } else if c.hhl {
            "✓"
        } else {
            "✗"
        };
        let prior = if !c.applicable {
            String::new()
        } else if c.prior_logics.is_empty() {
            "∅ (no prior logic)".to_owned()
        } else {
            c.prior_logics.join(", ")
        };
        out.push_str(&format!(
            "{:<32} {:<4} {:<7} {:<40} {}\n",
            c.class.label(),
            c.execs.label(),
            hhl,
            prior,
            c.demo
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_all_cells() {
        let cells = fig1_matrix();
        assert_eq!(cells.len(), 24); // 6 classes × 4 exec counts
        for class in PropertyClass::all() {
            for execs in ExecCount::all() {
                assert!(
                    cells.iter().any(|c| c.class == class && c.execs == execs),
                    "missing cell {class:?} × {execs:?}"
                );
            }
        }
    }

    #[test]
    fn hhl_covers_every_applicable_cell() {
        // The paper's headline claim: a green checkmark in every applicable
        // cell, including the four ∅ cells no prior logic covers.
        for c in fig1_matrix() {
            if c.applicable {
                assert!(c.hhl, "HHL must cover {:?} × {:?}", c.class, c.execs);
            }
        }
    }

    #[test]
    fn exactly_the_papers_empty_cells() {
        // The cells the paper marks ∅ (covered only by HHL):
        let empties: Vec<_> = fig1_matrix()
            .into_iter()
            .filter(|c| c.applicable && c.prior_logics.is_empty())
            .map(|c| (c.class, c.execs))
            .collect();
        use ExecCount::*;
        use PropertyClass::*;
        for expected in [
            (Overapproximate, Unbounded),
            (BackwardUnderapprox, K),
            (BackwardUnderapprox, Unbounded),
            (ForwardUnderapprox, Unbounded),
            (ForallExists, Unbounded),
            (ExistsForall, K),
            (ExistsForall, Unbounded),
            (SetProperties, Unbounded),
        ] {
            assert!(empties.contains(&expected), "{expected:?} should be ∅");
        }
    }

    #[test]
    fn render_is_nonempty_and_aligned() {
        let r = render_matrix();
        assert!(r.lines().count() >= 26);
        assert!(r.contains("∅ (no prior logic)"));
        assert!(r.contains("not applicable"));
    }
}
