//! Underapproximate logics (App. C.2): Incorrectness Logic (Def. 18),
//! k-Incorrectness Logic (Def. 19), Forward Underapproximation (Def. 20)
//! and k-FU (Def. 21), with their translations (Props. 6, 8, 9, 11).

use hhl_core::semantic::{sem, SemAssertion, SemTriple};
use hhl_lang::{Cmd, ExecConfig, ExtState, StateSet, Symbol, Value};

use crate::common::{k_exec, k_tuples, StateSetPred, TuplePred};

/// Incorrectness Logic validity (Def. 18):
/// `|=IL {P} C {Q} ≜ ∀φ ∈ Q. ∃σ. (φ_L, σ) ∈ P ∧ ⟨C, σ⟩ → φ_P` — every state
/// in the result assertion is *reachable*.
pub fn il_valid(p: &StateSetPred, cmd: &Cmd, q: &StateSetPred, exec: &ExecConfig) -> bool {
    q.iter().all(|phi| {
        p.iter().any(|start| {
            start.logical == phi.logical && exec.exec(cmd, &start.program).contains(&phi.program)
        })
    })
}

/// Prop. 6: the hyper-triple `{λS. P ⊆ S} C {λS. Q ⊆ S}` expressing an IL
/// triple — assertions are *lower bounds* on the state set.
pub fn il_as_hyper_triple(p: StateSetPred, cmd: Cmd, q: StateSetPred) -> SemTriple {
    SemTriple::new(lower_bound(p), cmd, lower_bound(q))
}

fn lower_bound(bound: StateSetPred) -> SemAssertion {
    sem(move |s: &StateSet| bound.iter().all(|phi| s.contains(phi)))
}

/// Forward Underapproximation validity (Def. 20):
/// `|=FU {P} C {Q} ≜ ∀φ ∈ P. ∃σ'. ⟨C, φ_P⟩ → σ' ∧ (φ_L, σ') ∈ Q`.
pub fn fu_valid(p: &StateSetPred, cmd: &Cmd, q: &StateSetPred, exec: &ExecConfig) -> bool {
    p.iter().all(|phi| {
        exec.exec(cmd, &phi.program)
            .into_iter()
            .any(|sigma_p| q.contains(&ExtState::new(phi.logical.clone(), sigma_p)))
    })
}

/// Prop. 9: the hyper-triple `{λS. P ∩ S ≠ ∅} C {λS. Q ∩ S ≠ ∅}` expressing
/// an FU triple (for the singleton-P case this is exactly the definition;
/// the general case is the k = 1 instance of Prop. 11).
pub fn fu_as_hyper_triple(p: StateSetPred, cmd: Cmd, q: StateSetPred) -> SemTriple {
    SemTriple::new(intersects(p), cmd, intersects(q))
}

fn intersects(bound: StateSetPred) -> SemAssertion {
    sem(move |s: &StateSet| bound.iter().any(|phi| s.contains(phi)))
}

/// k-Forward-Underapproximation validity (Def. 21):
/// `|=k-FU {P} C {Q} ≜ ∀#φ ∈ P. ∃#φ' ∈ Q. ⟨C, #φ⟩ →ᵏ #φ'`.
pub fn kfu_valid(
    k: usize,
    p: &TuplePred,
    cmd: &Cmd,
    q: &TuplePred,
    universe: &[ExtState],
    exec: &ExecConfig,
) -> bool {
    k_tuples(universe, k)
        .into_iter()
        .all(|tuple| !p(&tuple) || k_exec(cmd, &tuple, exec).into_iter().any(|out| q(&out)))
}

/// Prop. 11: the hyper-triple expressing a k-FU triple via execution tags:
/// `P' ≜ ∃#φ ∈ P. ∀i. ⟨φᵢ⟩ ∧ φᵢ_L(t) = i` (and likewise `Q'`).
pub fn kfu_as_hyper_triple(
    k: usize,
    p: TuplePred,
    cmd: Cmd,
    q: TuplePred,
    tag: Symbol,
    universe: Vec<ExtState>,
) -> SemTriple {
    SemTriple::new(
        some_tagged_tuple(k, tag, p, universe.clone()),
        cmd,
        some_tagged_tuple(k, tag, q, universe),
    )
}

/// `λS. ∃#φ. pred(#φ) ∧ ∀i. φᵢ ∈ S ∧ φᵢ_L(t) = i`, with tuple components
/// drawn from the (finite) tagged universe.
fn some_tagged_tuple(
    k: usize,
    tag: Symbol,
    pred: TuplePred,
    universe: Vec<ExtState>,
) -> SemAssertion {
    sem(move |s: &StateSet| {
        let slots: Vec<Vec<ExtState>> = (1..=k)
            .map(|i| {
                universe
                    .iter()
                    .filter(|phi| s.contains(phi) && phi.logical.get(tag) == Value::Int(i as i64))
                    .cloned()
                    .collect()
            })
            .collect();
        fn go(slots: &[Vec<ExtState>], acc: &mut Vec<ExtState>, pred: &TuplePred) -> bool {
            match slots.split_first() {
                None => pred(acc),
                Some((head, rest)) => head.iter().any(|phi| {
                    acc.push(phi.clone());
                    let ok = go(rest, acc, pred);
                    acc.pop();
                    ok
                }),
            }
        }
        go(&slots, &mut Vec::new(), &pred)
    })
}

/// k-Incorrectness Logic validity (Def. 19):
/// `|=k-IL {P} C {Q} ≜ ∀#φ' ∈ Q. ∃#φ ∈ P. ⟨C, #φ⟩ →ᵏ #φ'`.
pub fn kil_valid(
    k: usize,
    p: &TuplePred,
    cmd: &Cmd,
    q: &TuplePred,
    universe: &[ExtState],
    exec: &ExecConfig,
) -> bool {
    k_tuples(universe, k).into_iter().all(|out| {
        if !q(&out) {
            return true;
        }
        k_tuples(universe, k)
            .into_iter()
            .any(|start| p(&start) && k_exec(cmd, &start, exec).into_iter().any(|res| res == out))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tuple_pred;
    use hhl_assert::{EntailConfig, Universe};
    use hhl_core::semantic::sem_valid;
    use hhl_lang::{parse_cmd, Store};

    fn st(x: i64) -> ExtState {
        ExtState::from_program(Store::from_pairs([("x", Value::Int(x))]))
    }

    fn exec() -> ExecConfig {
        ExecConfig::int_range(0, 2)
    }

    #[test]
    fn il_direct_judgment_reachability() {
        // IL: every state with x ∈ {0,1,2} is reachable by x := nonDet()
        // from {x = 0}.
        let p: StateSetPred = [st(0)].into_iter().collect();
        let q: StateSetPred = [st(0), st(1), st(2)].into_iter().collect();
        let havoc = parse_cmd("x := nonDet()").unwrap();
        assert!(il_valid(&p, &havoc, &q, &exec()));
        // x = 3 is not reachable: IL triple fails.
        let q_bad: StateSetPred = [st(3)].into_iter().collect();
        assert!(!il_valid(&p, &havoc, &q_bad, &exec()));
        // IL disproves functional correctness: {x=0} x := 1 {x=2} invalid.
        let inc = parse_cmd("x := 1").unwrap();
        assert!(!il_valid(&p, &inc, &[st(2)].into_iter().collect(), &exec()));
    }

    #[test]
    fn prop6_il_agrees_with_hyper_triple() {
        let u = Universe::int_cube(&["x"], 0, 2);
        let cfg = EntailConfig::default();
        for (src, qs, expect) in [
            ("x := nonDet()", vec![0i64, 1, 2], true),
            ("x := 1", vec![1], true),
            ("x := 1", vec![2], false),
            ("{ x := 0 } + { x := 2 }", vec![0, 2], true),
        ] {
            let cmd = parse_cmd(src).unwrap();
            let p: StateSetPred = [st(0)].into_iter().collect();
            let q: StateSetPred = qs.iter().map(|&v| st(v)).collect();
            let direct = il_valid(&p, &cmd, &q, &exec());
            let hyper = sem_valid(&il_as_hyper_triple(p, cmd, q), &u, &exec(), &cfg);
            assert_eq!(direct, hyper, "Prop. 6 mismatch for {src} / {qs:?}");
            assert_eq!(direct, expect, "IL status for {src}");
        }
    }

    #[test]
    fn fu_direct_judgment() {
        // FU: from every x there exists a run of havoc reaching x = 1.
        let p: StateSetPred = [st(0), st(2)].into_iter().collect();
        let q: StateSetPred = [st(1)].into_iter().collect();
        let havoc = parse_cmd("x := nonDet()").unwrap();
        assert!(fu_valid(&p, &havoc, &q, &exec()));
        // assume false has no executions: FU fails for non-empty P.
        let stuck = parse_cmd("assume false").unwrap();
        assert!(!fu_valid(&p, &stuck, &q, &exec()));
    }

    #[test]
    fn prop9_fu_agrees_with_hyper_triple() {
        let u = Universe::int_cube(&["x"], 0, 2);
        let cfg = EntailConfig::default();
        for (src, expect) in [
            ("x := nonDet()", true),
            ("x := 1", true),
            ("x := 2", false),
            ("assume false", false),
        ] {
            let cmd = parse_cmd(src).unwrap();
            let p: StateSetPred = [st(0)].into_iter().collect();
            let q: StateSetPred = [st(1)].into_iter().collect();
            let direct = fu_valid(&p, &cmd, &q, &exec());
            let hyper = sem_valid(&fu_as_hyper_triple(p, cmd, q), &u, &exec(), &cfg);
            assert_eq!(direct, hyper, "Prop. 9 mismatch for {src}");
            assert_eq!(direct, expect, "FU status for {src}");
        }
    }

    #[test]
    fn kfu_direct_judgment_insecurity() {
        // k-FU (k = 2) can *prove a violation* of NI: there exist two runs
        // of C2 with equal l inputs and different l outputs.
        let mk = |h: i64, l: i64| {
            ExtState::from_program(Store::from_pairs([
                ("h", Value::Int(h)),
                ("l", Value::Int(l)),
            ]))
        };
        let universe: Vec<ExtState> = vec![mk(0, 0), mk(1, 0), mk(0, 1), mk(1, 1)];
        let p = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("l") == t[1].program.get("l")
                && t[0].program.get("h") != t[1].program.get("h")
        });
        let q = tuple_pred(|t: &[ExtState]| t[0].program.get("l") != t[1].program.get("l"));
        let c2 = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").unwrap();
        assert!(kfu_valid(
            2,
            &p,
            &c2,
            &q,
            &universe,
            &ExecConfig::int_range(0, 1)
        ));
        // The secure command l := l keeps outputs equal: insecurity fails.
        let secure = parse_cmd("l := l").unwrap();
        assert!(!kfu_valid(
            2,
            &p,
            &secure,
            &q,
            &universe,
            &ExecConfig::int_range(0, 1)
        ));
    }

    #[test]
    fn prop11_kfu_agrees_with_hyper_triple() {
        let tag = Symbol::new("t");
        let base = Universe::int_cube(&["x"], 0, 1);
        let tagged = base.tag_logical("t", &[Value::Int(1), Value::Int(2)]);
        let cfg = EntailConfig {
            max_subset_size: 4,
            ..EntailConfig::default()
        };
        let p = tuple_pred(|t: &[ExtState]| t[0].program.get("x") == t[1].program.get("x"));
        for (src, expect) in [("x := x + 1", true), ("assume x > 5", false)] {
            let cmd = parse_cmd(src).unwrap();
            let q = tuple_pred(|t: &[ExtState]| t[0].program.get("x") == t[1].program.get("x"));
            // Direct judgment over the *tagged* universe (tags are carried
            // through executions).
            let direct = kfu_valid(2, &p, &cmd, &q, &tagged.states, &exec());
            let hyper = sem_valid(
                &kfu_as_hyper_triple(
                    2,
                    p.clone(),
                    cmd,
                    q,
                    tag,
                    tagged_closure_universe(&tagged.states, &exec()),
                ),
                &tagged,
                &exec(),
                &cfg,
            );
            assert_eq!(direct, hyper, "Prop. 11 mismatch for {src}");
            assert_eq!(direct, expect, "k-FU status for {src}");
        }
    }

    /// The tagged universe closed under execution (the hyper-assertion must
    /// be able to mention final states too).
    fn tagged_closure_universe(states: &[ExtState], exec: &ExecConfig) -> Vec<ExtState> {
        let mut out: StateSetPred = states.iter().cloned().collect();
        for phi in states {
            for sigma in exec.exec(&parse_cmd("x := x + 1").unwrap(), &phi.program) {
                out.insert(ExtState::new(phi.logical.clone(), sigma));
            }
        }
        out.into_iter().collect()
    }

    #[test]
    fn kil_direct_judgment() {
        // k-IL (k = 2): every output pair with equal x is reachable from
        // some input pair with equal x under x := x + 1 … over matching
        // universes.
        let universe: Vec<ExtState> = (0..=2).map(st).collect();
        let p = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("x") == t[1].program.get("x") && t[0].program.get("x").as_int() <= 1
        });
        let q = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("x") == t[1].program.get("x")
                && (1..=2).contains(&t[0].program.get("x").as_int())
        });
        let cmd = parse_cmd("x := x + 1").unwrap();
        assert!(kil_valid(2, &p, &cmd, &q, &universe, &exec()));
        // Unreachable outputs (x = 0 after increment) break the judgment.
        let q_bad = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("x").as_int() == 0 && t[1].program.get("x").as_int() == 0
        });
        assert!(!kil_valid(2, &p, &cmd, &q_bad, &universe, &exec()));
    }
}
