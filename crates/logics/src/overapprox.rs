//! Overapproximate logics: Hoare Logic (Def. 16) and Cartesian Hoare Logic
//! (Def. 17), with their App. C.1 translations into hyper-triples
//! (Props. 2 and 4).

use hhl_core::semantic::{sem, SemAssertion, SemTriple};
use hhl_lang::{Cmd, ExecConfig, ExtState, StateSet, Symbol, Value};

use crate::common::{k_exec, k_tuples, StateSetPred, TuplePred};

/// Classical Hoare Logic validity (Def. 16):
/// `|=HL {P} C {Q} ≜ ∀φ ∈ P. ∀σ'. ⟨C, φ_P⟩ → σ' ⇒ (φ_L, σ') ∈ Q`.
pub fn hl_valid(p: &StateSetPred, cmd: &Cmd, q: &StateSetPred, exec: &ExecConfig) -> bool {
    p.iter().all(|phi| {
        exec.exec(cmd, &phi.program)
            .into_iter()
            .all(|sigma_p| q.contains(&ExtState::new(phi.logical.clone(), sigma_p)))
    })
}

/// Prop. 2: the hyper-triple `{λS. S ⊆ P} C {λS. S ⊆ Q}` expressing an HL
/// triple — assertions are *upper bounds* on the state set.
pub fn hl_as_hyper_triple(p: StateSetPred, cmd: Cmd, q: StateSetPred) -> SemTriple {
    let pre = upper_bound(p);
    let post = upper_bound(q);
    SemTriple::new(pre, cmd, post)
}

fn upper_bound(bound: StateSetPred) -> SemAssertion {
    sem(move |s: &StateSet| s.iter().all(|phi| bound.contains(phi)))
}

/// Cartesian Hoare Logic validity (Def. 17):
/// `|=CHL(k) {P} C {Q} ≜ ∀#φ ∈ P. ∀#φ'. ⟨C, #φ⟩ →ᵏ #φ' ⇒ #φ' ∈ Q`.
///
/// `P`, `Q` are predicates over `k`-tuples; the initial tuples range over
/// `universe^k`.
pub fn chl_valid(
    k: usize,
    p: &TuplePred,
    cmd: &Cmd,
    q: &TuplePred,
    universe: &[ExtState],
    exec: &ExecConfig,
) -> bool {
    k_tuples(universe, k)
        .into_iter()
        .all(|tuple| !p(&tuple) || k_exec(cmd, &tuple, exec).into_iter().all(|out| q(&out)))
}

/// Prop. 4: the hyper-triple expressing a CHL(k) triple. States are
/// identified by the execution tag `t ∈ {1..k}` in their logical store:
///
/// `P' ≜ ∀#φ. (∀i. ⟨φᵢ⟩ ∧ φᵢ_L(t) = i) ⇒ #φ ∈ P` (and likewise `Q'`).
pub fn chl_as_hyper_triple(
    k: usize,
    p: TuplePred,
    cmd: Cmd,
    q: TuplePred,
    tag: Symbol,
) -> SemTriple {
    SemTriple::new(
        tagged_tuples_satisfy(k, tag, p),
        cmd,
        tagged_tuples_satisfy(k, tag, q),
    )
}

/// `λS. ∀#φ. (∀i ∈ [1, k]. φᵢ ∈ S ∧ φᵢ_L(t) = i) ⇒ pred(#φ)`.
pub fn tagged_tuples_satisfy(k: usize, tag: Symbol, pred: TuplePred) -> SemAssertion {
    sem(move |s: &StateSet| {
        // Enumerate, per slot i, the states of S tagged i.
        let slots: Vec<Vec<ExtState>> = (1..=k)
            .map(|i| {
                s.iter()
                    .filter(|phi| phi.logical.get(tag) == Value::Int(i as i64))
                    .cloned()
                    .collect()
            })
            .collect();
        fn go(slots: &[Vec<ExtState>], acc: &mut Vec<ExtState>, pred: &TuplePred) -> bool {
            match slots.split_first() {
                None => pred(acc),
                Some((head, rest)) => head.iter().all(|phi| {
                    acc.push(phi.clone());
                    let ok = go(rest, acc, pred);
                    acc.pop();
                    ok
                }),
            }
        }
        go(&slots, &mut Vec::new(), &pred)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tuple_pred;
    use hhl_assert::{candidate_sets, EntailConfig, Universe};
    use hhl_core::semantic::sem_valid;
    use hhl_lang::{parse_cmd, Store};

    fn universe() -> Universe {
        Universe::int_cube(&["x", "h"], 0, 1)
    }

    fn all_states() -> Vec<ExtState> {
        universe().states
    }

    fn exec() -> ExecConfig {
        ExecConfig::int_range(0, 1)
    }

    #[test]
    fn hl_direct_judgment() {
        // {x = 0} x := x + 1 {x = 1} in HL form.
        let p: StateSetPred = all_states()
            .into_iter()
            .filter(|phi| phi.program.get("x") == Value::Int(0))
            .collect();
        let q: StateSetPred = Universe::int_cube(&["x", "h"], 0, 2)
            .states
            .into_iter()
            .filter(|phi| phi.program.get("x") == Value::Int(1))
            .collect();
        let cmd = parse_cmd("x := x + 1").unwrap();
        assert!(hl_valid(&p, &cmd, &q, &exec()));
        // And a failing one: postcondition x = 0.
        let q_bad: StateSetPred = all_states()
            .into_iter()
            .filter(|phi| phi.program.get("x") == Value::Int(0))
            .collect();
        assert!(!hl_valid(&p, &cmd, &q_bad, &exec()));
    }

    #[test]
    fn prop2_hl_agrees_with_hyper_triple() {
        // Prop. 2 equivalence over a suite of commands.
        let mk_p = || -> StateSetPred {
            all_states()
                .into_iter()
                .filter(|phi| phi.program.get("x") == Value::Int(0))
                .collect()
        };
        let mk_q = |xs: &[i64]| -> StateSetPred {
            Universe::int_cube(&["x", "h"], 0, 2)
                .states
                .into_iter()
                .filter(|phi| xs.contains(&phi.program.get("x").as_int()))
                .collect()
        };
        let check_cfg = EntailConfig {
            max_subset_size: 4,
            ..EntailConfig::default()
        };
        for (src, qs) in [
            ("x := x + 1", vec![1]),
            ("x := x + 1", vec![0]), // invalid case
            ("{ x := 1 } + { x := 0 }", vec![0, 1]),
            ("skip", vec![0]),
            ("assume x > 0", vec![0, 1]),
        ] {
            let cmd = parse_cmd(src).unwrap();
            let direct = hl_valid(&mk_p(), &cmd, &mk_q(&qs), &exec());
            let triple = hl_as_hyper_triple(mk_p(), cmd, mk_q(&qs));
            let hyper = sem_valid(&triple, &universe(), &exec(), &check_cfg);
            assert_eq!(direct, hyper, "Prop. 2 mismatch for {src} / {qs:?}");
        }
    }

    #[test]
    fn chl_direct_judgment_monotonicity() {
        // CHL(2) monotonicity: x(1) ≥ x(2) ⇒ y(1) ≥ y(2) for y := x * 2
        // (program variables, execution i = tuple slot i).
        let p = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("x").as_int() >= t[1].program.get("x").as_int()
        });
        let q = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("y").as_int() >= t[1].program.get("y").as_int()
        });
        let mono = parse_cmd("y := x * 2").unwrap();
        assert!(chl_valid(2, &p, &mono, &q, &all_states(), &exec()));
        let anti = parse_cmd("y := 0 - x").unwrap();
        assert!(!chl_valid(2, &p, &anti, &q, &all_states(), &exec()));
    }

    #[test]
    fn prop4_chl_agrees_with_hyper_triple() {
        let tag = Symbol::new("t");
        let p = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("x").as_int() >= t[1].program.get("x").as_int()
        });
        let q = tuple_pred(|t: &[ExtState]| {
            t[0].program.get("y").as_int() >= t[1].program.get("y").as_int()
        });
        // Tag the universe with t ∈ {1, 2}.
        let tagged =
            Universe::int_cube(&["x"], 0, 2).tag_logical("t", &[Value::Int(1), Value::Int(2)]);
        let check_cfg = EntailConfig {
            max_subset_size: 4,
            ..EntailConfig::default()
        };
        for (src, expect) in [
            ("y := x * 2", true),
            ("y := 0 - x", false),
            ("y := 1", true),
        ] {
            let cmd = parse_cmd(src).unwrap();
            let direct = chl_valid(
                2,
                &p,
                &cmd,
                &q,
                &Universe::int_cube(&["x"], 0, 2).states,
                &exec(),
            );
            let triple = chl_as_hyper_triple(2, p.clone(), cmd, q.clone(), tag);
            let hyper = sem_valid(&triple, &tagged, &exec(), &check_cfg);
            assert_eq!(direct, hyper, "Prop. 4 mismatch for {src}");
            assert_eq!(direct, expect, "expected CHL status for {src}");
        }
    }

    #[test]
    fn upper_bound_assertion_semantics() {
        let p: StateSetPred = [ExtState::from_program(Store::from_pairs([(
            "x",
            Value::Int(0),
        )]))]
        .into_iter()
        .collect();
        let a = upper_bound(p);
        let inside: StateSet = [ExtState::from_program(Store::from_pairs([(
            "x",
            Value::Int(0),
        )]))]
        .into_iter()
        .collect();
        let outside: StateSet = [ExtState::from_program(Store::from_pairs([(
            "x",
            Value::Int(1),
        )]))]
        .into_iter()
        .collect();
        assert!(a(&inside));
        assert!(a(&StateSet::new())); // ∅ ⊆ P
        assert!(!a(&outside));
        // sanity: candidate_sets exposes ∅ so HL's vacuous case is covered
        let sets = candidate_sets(&universe(), &EntailConfig::default());
        assert!(sets.iter().any(|s| s.is_empty()));
    }
}
