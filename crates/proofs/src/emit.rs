//! Serialization: pretty-printing derivations back to canonical `.hhlp`
//! scripts, and hyper-assertions/commands back to the ASCII surface syntax
//! the workspace parsers read.
//!
//! The emitter is the inverse of elaboration up to formatting: re-parsing
//! an emitted script yields a structurally identical derivation whenever
//! the original's assertions came from `parse_assertion` (raw
//! hyper-expressions with top-level `&&`/`||`/`!` normalize onto the
//! assertion connectives, exactly as the parser would have built them).

use std::fmt;
use std::fmt::Write as _;

use hhl_assert::{Assertion, Family, HExpr};
use hhl_core::proof::Derivation;
use hhl_lang::{BinOp, Cmd};

/// Error raised when a derivation has no textual form.
#[derive(Clone, Debug)]
pub struct EmitError {
    /// What cannot be serialized.
    pub what: String,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot serialize proof: {}", self.what)
    }
}

impl std::error::Error for EmitError {}

fn unsupported<T>(what: impl Into<String>) -> Result<T, EmitError> {
    Err(EmitError { what: what.into() })
}

/// Assertion-level binding power of a node, mirroring the parser's
/// precedence climb: `||` 2, `&&` 3, atoms 4; quantifiers extend maximally
/// right and get 1.
fn asrt_bp(a: &Assertion) -> u8 {
    match a {
        Assertion::Or(_, _) => 2,
        Assertion::And(_, _) => 3,
        Assertion::ForallVal(_, _)
        | Assertion::ExistsVal(_, _)
        | Assertion::ForallState(_, _)
        | Assertion::ExistsState(_, _) => 1,
        // An atom whose top-level hyper-expression is a boolean connective
        // prints with that connective's assertion-level power.
        Assertion::Atom(HExpr::Bin(BinOp::And, _, _)) => 3,
        Assertion::Atom(HExpr::Bin(BinOp::Or, _, _)) => 2,
        _ => 4,
    }
}

fn go(a: &Assertion, min_bp: u8, out: &mut String) -> Result<(), EmitError> {
    let bp = asrt_bp(a);
    let wrap = bp < min_bp;
    if wrap {
        out.push('(');
    }
    match a {
        Assertion::Atom(e) => {
            let _ = write!(out, "{e}");
        }
        Assertion::Not(inner) => {
            out.push_str("!(");
            go(inner, 1, out)?;
            out.push(')');
        }
        Assertion::And(l, r) => {
            go(l, 3, out)?;
            out.push_str(" && ");
            go(r, 4, out)?;
        }
        Assertion::Or(l, r) => {
            go(l, 2, out)?;
            out.push_str(" || ");
            go(r, 3, out)?;
        }
        Assertion::ForallVal(y, body) => {
            let _ = write!(out, "forall {y}. ");
            go(body, 1, out)?;
        }
        Assertion::ExistsVal(y, body) => {
            let _ = write!(out, "exists {y}. ");
            go(body, 1, out)?;
        }
        Assertion::ForallState(p, body) => {
            let _ = write!(out, "forall <{p}>. ");
            go(body, 1, out)?;
        }
        Assertion::ExistsState(p, body) => {
            let _ = write!(out, "exists <{p}>. ");
            go(body, 1, out)?;
        }
        Assertion::Card {
            state,
            proj,
            op,
            bound,
        } => {
            if !matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                return unsupported(format!("cardinality comparison `{}`", op.token()));
            }
            let _ = write!(out, "count(<{state}>. {proj}) {} ", op.token());
            // The parser reads the bound at additive precedence; lower-
            // binding tops need explicit parentheses.
            let parens = matches!(
                bound,
                HExpr::Bin(
                    BinOp::And
                        | BinOp::Or
                        | BinOp::Eq
                        | BinOp::Ne
                        | BinOp::Lt
                        | BinOp::Le
                        | BinOp::Gt
                        | BinOp::Ge,
                    _,
                    _
                )
            );
            if parens {
                let _ = write!(out, "({bound})");
            } else {
                let _ = write!(out, "{bound}");
            }
        }
        Assertion::StateEq(l, r) => {
            let _ = write!(out, "state_eq({l}, {r})");
        }
        Assertion::Otimes(_, _) => return unsupported("the ⊗ split operator"),
        Assertion::BigOtimes(_) => return unsupported("the indexed ⨂ operator"),
        Assertion::HasState(_) => return unsupported("concrete state membership ⟨φ⟩"),
        Assertion::IsState(_, _) => return unsupported("exact-state equations"),
        Assertion::UnionOf(_) => return unsupported("the ⨄ union-of operator"),
    }
    if wrap {
        out.push(')');
    }
    Ok(())
}

/// Prints an assertion in the ASCII surface syntax of
/// [`hhl_assert::parse_assertion`].
///
/// # Errors
///
/// [`EmitError`] on the semantic-only extension nodes (`⊗`, `⨂`, concrete
/// states, `⨄`), which have no surface syntax.
///
/// # Examples
///
/// ```
/// use hhl_assert::{parse_assertion, Assertion};
/// use hhl_proofs::ascii_assertion;
/// let a = Assertion::low("l").and(Assertion::emp());
/// let text = ascii_assertion(&a).unwrap();
/// assert_eq!(parse_assertion(&text).unwrap(), a);
/// ```
pub fn ascii_assertion(a: &Assertion) -> Result<String, EmitError> {
    let mut out = String::new();
    go(a, 0, &mut out)?;
    Ok(out)
}

/// Prints a command in the surface syntax of [`hhl_lang::parse_cmd`],
/// bracing nested sequences/choices so the parse re-associates identically.
///
/// Delegates to [`Cmd::to_source`] — the canonical emitter the memo-table
/// snapshots use for exact key reconstruction — so the `.hhlp` format and
/// the persistent caches agree on one textual form.
///
/// # Examples
///
/// ```
/// use hhl_lang::parse_cmd;
/// use hhl_proofs::ascii_cmd;
/// let c = parse_cmd("if (h > 0) { l := 1 } else { l := 0 }").unwrap();
/// assert_eq!(parse_cmd(&ascii_cmd(&c)).unwrap(), c);
/// ```
pub fn ascii_cmd(c: &Cmd) -> String {
    c.to_source()
}

struct Emitter {
    out: String,
    next: usize,
}

impl Emitter {
    fn push(&mut self, rule: &str, args: &str) -> String {
        self.next += 1;
        let label = format!("s{}", self.next);
        let _ = writeln!(self.out, "step {label} {rule} {args}");
        label
    }

    fn asrt(&self, key: &str, a: &Assertion) -> Result<String, EmitError> {
        Ok(format!("{key}={{{}}}", ascii_assertion(a)?))
    }

    fn family(&self, prefix: &str, fam: &Family, upto: u32) -> Result<String, EmitError> {
        let mut out = String::new();
        for i in 0..=upto {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{prefix}.{i}={{{}}}", ascii_assertion(&fam.at(i))?);
        }
        Ok(out)
    }

    fn emit(&mut self, d: &Derivation) -> Result<String, EmitError> {
        let label = match d {
            Derivation::Skip { p } => {
                let args = self.asrt("p", p)?;
                self.push("skip", &args)
            }
            Derivation::Seq(_, _) => {
                // Flatten the right spine into one n-ary `seq` step, the
                // shape `seq_all` rebuilds.
                let mut premises = Vec::new();
                let mut cur = d;
                while let Derivation::Seq(l, r) = cur {
                    premises.push(self.emit(l)?);
                    cur = r;
                }
                premises.push(self.emit(cur)?);
                self.push("seq", &format!("premises={}", premises.join(",")))
            }
            Derivation::Choice(l, r) => {
                let (l, r) = (self.emit(l)?, self.emit(r)?);
                self.push("choice", &format!("l={l} r={r}"))
            }
            Derivation::Cons { pre, post, inner } => {
                let from = self.emit(inner)?;
                let args = format!(
                    "{} {} from={from}",
                    self.asrt("pre", pre)?,
                    self.asrt("post", post)?
                );
                self.push("cons", &args)
            }
            Derivation::ConsPre { pre, inner } => {
                let from = self.emit(inner)?;
                let args = format!("{} from={from}", self.asrt("pre", pre)?);
                self.push("cons-pre", &args)
            }
            Derivation::AssignS { x, e, post } => {
                let args = format!("x={x} e={{{e}}} {}", self.asrt("post", post)?);
                self.push("assign-s", &args)
            }
            Derivation::HavocS { x, post } => {
                let args = format!("x={x} {}", self.asrt("post", post)?);
                self.push("havoc-s", &args)
            }
            Derivation::AssumeS { b, post } => {
                let args = format!("b={{{b}}} {}", self.asrt("post", post)?);
                self.push("assume-s", &args)
            }
            Derivation::Exist { y, inner } => {
                let from = self.emit(inner)?;
                self.push("exists", &format!("y={y} from={from}"))
            }
            Derivation::Forall { y, inner } => {
                let from = self.emit(inner)?;
                self.push("forall", &format!("y={y} from={from}"))
            }
            Derivation::Iter { inv, premises } => {
                let bound = premises.bound;
                let labels: Vec<String> = (0..=bound)
                    .map(|n| self.emit(&premises.at(n)))
                    .collect::<Result<_, _>>()?;
                let fam = self.family("inv", inv, (bound + 1).max(inv.bound))?;
                let args = format!(
                    "bound={bound} inv-bound={} {fam} premises={}",
                    inv.bound,
                    labels.join(",")
                );
                self.push("iter", &args)
            }
            Derivation::WhileDesugared {
                guard,
                inv,
                premises,
                exit,
            } => {
                let bound = premises.bound;
                let labels: Vec<String> = (0..=bound)
                    .map(|n| self.emit(&premises.at(n)))
                    .collect::<Result<_, _>>()?;
                // The elaborator re-wraps the exit premise in a `Cons` from
                // `⨂ₙ Iₙ`; unwrap a matching wrapper so that emit and
                // elaborate are mutually inverse.
                let exit = match &**exit {
                    Derivation::ConsPre {
                        pre: Assertion::BigOtimes(f),
                        inner,
                    } if *f == *inv => &**inner,
                    other => other,
                };
                let exit = self.emit(exit)?;
                let fam = self.family("inv", inv, (bound + 1).max(inv.bound))?;
                let args = format!(
                    "guard={{{guard}}} bound={bound} inv-bound={} {fam} premises={} exit={exit}",
                    inv.bound,
                    labels.join(",")
                );
                self.push("while-desugared", &args)
            }
            Derivation::WhileSync { guard, inv, body } => {
                let body = self.emit(body)?;
                let args = format!("guard={{{guard}}} {} body={body}", self.asrt("inv", inv)?);
                self.push("while-sync", &args)
            }
            Derivation::WhileSyncTerm {
                guard,
                inv,
                variant,
                body,
            } => {
                let body = self.emit(body)?;
                let args = format!(
                    "guard={{{guard}}} {} variant={{{variant}}} body={body}",
                    self.asrt("inv", inv)?
                );
                self.push("while-sync-term", &args)
            }
            Derivation::IfSync {
                guard,
                pre,
                post,
                then_d,
                else_d,
            } => {
                let (t, e) = (self.emit(then_d)?, self.emit(else_d)?);
                let args = format!(
                    "guard={{{guard}}} {} {} then={t} else={e}",
                    self.asrt("pre", pre)?,
                    self.asrt("post", post)?
                );
                self.push("if-sync", &args)
            }
            Derivation::WhileForallExists {
                guard,
                inv,
                body_if,
                exit,
            } => {
                let (b, x) = (self.emit(body_if)?, self.emit(exit)?);
                let args = format!(
                    "guard={{{guard}}} {} body={b} exit={x}",
                    self.asrt("inv", inv)?
                );
                self.push("while-forall-exists", &args)
            }
            Derivation::WhileExists {
                guard,
                phi,
                p_body,
                q_body,
                variant,
                v,
                decrease,
                rest,
            } => {
                let (dec, rest) = (self.emit(decrease)?, self.emit(rest)?);
                let args = format!(
                    "guard={{{guard}}} phi={phi} {} {} variant={{{variant}}} v={v} \
                     decrease={dec} rest={rest}",
                    self.asrt("p", p_body)?,
                    self.asrt("q", q_body)?
                );
                self.push("while-exists", &args)
            }
            Derivation::And(l, r) => {
                let (l, r) = (self.emit(l)?, self.emit(r)?);
                self.push("and", &format!("l={l} r={r}"))
            }
            Derivation::Or(l, r) => {
                let (l, r) = (self.emit(l)?, self.emit(r)?);
                self.push("or", &format!("l={l} r={r}"))
            }
            Derivation::Union(l, r) => {
                let (l, r) = (self.emit(l)?, self.emit(r)?);
                self.push("union", &format!("l={l} r={r}"))
            }
            Derivation::BigUnion(inner) => {
                let from = self.emit(inner)?;
                self.push("big-union", &format!("from={from}"))
            }
            Derivation::IndexedUnion {
                pre_fam,
                post_fam,
                premises,
            } => {
                let bound = premises.bound;
                let labels: Vec<String> = (0..=bound)
                    .map(|n| self.emit(&premises.at(n)))
                    .collect::<Result<_, _>>()?;
                let pre = self.family("pre", pre_fam, bound)?;
                let post = self.family("post", post_fam, bound)?;
                let args = format!("bound={bound} {pre} {post} premises={}", labels.join(","));
                self.push("indexed-union", &args)
            }
            Derivation::FrameSafe { frame, inner } => {
                let from = self.emit(inner)?;
                let args = format!("{} from={from}", self.asrt("frame", frame)?);
                self.push("frame-safe", &args)
            }
            Derivation::FrameT { frame, inner } => {
                let from = self.emit(inner)?;
                let args = format!("{} from={from}", self.asrt("frame", frame)?);
                self.push("frame-t", &args)
            }
            Derivation::Specialize { b, inner } => {
                let from = self.emit(inner)?;
                self.push("specialize", &format!("b={{{b}}} from={from}"))
            }
            Derivation::LUpdateS { t, e, pre, inner } => {
                let from = self.emit(inner)?;
                let args = format!("t={t} e={{{e}}} {} from={from}", self.asrt("pre", pre)?);
                self.push("lupdate-s", &args)
            }
            Derivation::True { pre, cmd } => {
                let args = format!("{} cmd={{{}}}", self.asrt("pre", pre)?, ascii_cmd(cmd));
                self.push("true", &args)
            }
            Derivation::False { cmd, post } => {
                let args = format!("cmd={{{}}} {}", ascii_cmd(cmd), self.asrt("post", post)?);
                self.push("false", &args)
            }
            Derivation::Empty { cmd } => {
                let args = format!("cmd={{{}}}", ascii_cmd(cmd));
                self.push("empty", &args)
            }
            Derivation::Oracle { triple, note } => {
                // Notes are informational free text; keep them inside one
                // braced argument.
                let note: String = note
                    .chars()
                    .map(|c| match c {
                        '{' | '}' => ')',
                        '\n' => ' ',
                        c => c,
                    })
                    .collect();
                let args = format!(
                    "{} cmd={{{}}} {} note={{{note}}}",
                    self.asrt("pre", &triple.pre)?,
                    ascii_cmd(&triple.cmd),
                    self.asrt("post", &triple.post)?
                );
                self.push("oracle", &args)
            }
            Derivation::Linking { .. } => {
                return unsupported(
                    "the Linking rule (its premise family is a closure over \
                     concrete state pairs)",
                )
            }
        };
        Ok(label)
    }
}

/// Serializes a derivation to a canonical `.hhlp` script; the last emitted
/// step is the root.
///
/// # Errors
///
/// [`EmitError`] on `Linking` nodes or assertions outside the surface
/// syntax (see [`ascii_assertion`]).
///
/// # Examples
///
/// ```
/// use hhl_assert::Assertion;
/// use hhl_core::proof::Derivation;
/// use hhl_proofs::{compile_script, emit_script};
/// let d = Derivation::Skip { p: Assertion::low("l") };
/// let script = emit_script(&d).unwrap();
/// assert_eq!(compile_script(&script).unwrap().rule_name(), "Skip");
/// ```
pub fn emit_script(d: &Derivation) -> Result<String, EmitError> {
    let mut emitter = Emitter {
        out: String::from("hhlp 1\n# emitted by hhl-proofs; the last step is the proof's root\n"),
        next: 0,
    };
    emitter.emit(d)?;
    Ok(emitter.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_script;
    use hhl_assert::parse_assertion;
    use hhl_lang::parse_cmd;

    fn roundtrip_assertion(src: &str) {
        let a = parse_assertion(src).unwrap();
        let text = ascii_assertion(&a).unwrap();
        let b = parse_assertion(&text).unwrap_or_else(|e| panic!("{src:?} → {text:?}: {e}"));
        assert_eq!(a, b, "{src:?} → {text:?}");
    }

    #[test]
    fn oracle_over_a_loop_roundtrips() {
        // Regression: Star/Choice commands emit as brace blocks (`{ C }*`),
        // so oracle/true/false/empty steps over loop programs need the
        // nesting-aware value parser to round-trip.
        let cmd = parse_cmd("while (x > 0) { x := x - 1 }").unwrap();
        let d = Derivation::Oracle {
            triple: hhl_core::Triple::new(
                parse_assertion("true").unwrap(),
                cmd,
                parse_assertion("low(x)").unwrap(),
            ),
            note: "admitted".to_owned(),
        };
        let script = emit_script(&d).unwrap();
        let replayed = compile_script(&script)
            .unwrap_or_else(|e| panic!("emitted oracle script rejected: {e}\n{script}"));
        assert_eq!(emit_script(&replayed).unwrap(), script);
    }

    #[test]
    fn assertion_roundtrips() {
        for src in [
            "low(l)",
            "emp",
            "true && !false",
            "low(i) && low(n)",
            "(low(i) && low(n)) && (forall <phi>. phi(i) < phi(n))",
            "forall <phi1>, <phi2>. exists <phi>. phi(h) == phi1(h) && phi(l) == phi2(l)",
            "forall n. 0 <= n && n <= 9 => exists <phi>. phi(x) == n",
            "count(<p>. p(o)) <= v + 1",
            "exists <p>. forall <q>. state_eq(p, q)",
            "forall <p>. p($t) == 1 => p(x) >= 0",
            "low(a) || low(b) && low(c)",
            "(low(a) || low(b)) && low(c)",
            "forall <p>. p(h)[0] == [4, 5][0]",
            "forall <p>. forall v·0. p(x) <= v·0",
            "forall <p>. max(p(x), p(y)) >= min(p(x), 0) && len(p(h)) == 2",
        ] {
            roundtrip_assertion(src);
        }
    }

    #[test]
    fn transform_outputs_roundtrip() {
        // The WP transforms' outputs are exactly what emitted certificates
        // store as intermediate posts.
        use hhl_assert::{assume_transform, havoc_transform};
        use hhl_lang::{Expr, Symbol};
        let q = Assertion::gni_violation("h", "l");
        let pi = assume_transform(&Expr::var("y").le(Expr::int(9)), &q).unwrap();
        let text = ascii_assertion(&pi).unwrap();
        assert_eq!(parse_assertion(&text).unwrap(), pi, "{text}");
        let h = havoc_transform(Symbol::new("y"), &pi).unwrap();
        let text = ascii_assertion(&h).unwrap();
        assert_eq!(parse_assertion(&text).unwrap(), h, "{text}");
    }

    #[test]
    fn unsupported_assertions_error() {
        let a = Assertion::tt().otimes(Assertion::tt());
        assert!(ascii_assertion(&a).is_err());
        let u = Assertion::UnionOf(Box::new(Assertion::tt()));
        assert!(ascii_assertion(&u).is_err());
    }

    #[test]
    fn cmd_roundtrips() {
        for src in [
            "skip",
            "l := l * 2",
            "y := nonDet(); assume y <= 9; l := h + y",
            "if (h > 0) { l := 1 } else { l := 0 }",
            "while (i < n) { i := i + 1 }",
            "{ x := 1 } + { x := 2 } + { x := 3 }",
            "{ assume x < 2; x := x + 1 }*",
            "x := $t + 1",
        ] {
            let c = parse_cmd(src).unwrap();
            let text = ascii_cmd(&c);
            let c2 = parse_cmd(&text).unwrap_or_else(|e| panic!("{src:?} → {text:?}: {e}"));
            assert_eq!(c, c2, "{src:?} → {text:?}");
        }
    }

    #[test]
    fn left_nested_shapes_keep_association() {
        let left_seq = Cmd::seq(Cmd::seq(Cmd::havoc("a"), Cmd::havoc("b")), Cmd::havoc("c"));
        let text = ascii_cmd(&left_seq);
        assert_eq!(parse_cmd(&text).unwrap(), left_seq, "{text}");

        let right_choice = Cmd::choice(
            Cmd::havoc("a"),
            Cmd::choice(Cmd::havoc("b"), Cmd::havoc("c")),
        );
        let text = ascii_cmd(&right_choice);
        assert_eq!(parse_cmd(&text).unwrap(), right_choice, "{text}");
    }

    #[test]
    fn emitted_scripts_recompile_to_the_same_tree() {
        let src = "\
            step a2 assign-s x=l e={l + 1} post={low(l)}\n\
            step a1 assign-s x=l e={l * 2} post={forall <phi1>, <phi2>. phi1(l) + 1 == phi2(l) + 1}\n\
            step chain seq premises=a1,a2\n\
            step root cons pre={low(l)} post={low(l)} from=chain\n";
        let d = compile_script(src).unwrap();
        let emitted = emit_script(&d).unwrap();
        let d2 = compile_script(&emitted).unwrap();
        let again = emit_script(&d2).unwrap();
        // Canonical form is a fixed point: emit ∘ compile ∘ emit = emit.
        assert_eq!(emitted, again);
    }

    #[test]
    fn linking_is_reported_unserializable() {
        use hhl_core::proof::LinkPremise;
        use hhl_lang::Symbol;
        let d = Derivation::Linking {
            phi: Symbol::new("phi"),
            p_body: Assertion::tt(),
            q_body: Assertion::tt(),
            cmd: Cmd::Skip,
            premise: LinkPremise::new(|_, _| Derivation::Skip { p: Assertion::tt() }),
        };
        let e = emit_script(&d).unwrap_err();
        assert!(e.to_string().contains("Linking"), "{e}");
    }
}
