//! The raw `.hhlp` script surface: lexical format, parsing, rule table.
//!
//! ```text
//! file    ::= header? line*
//! header  ::= 'hhlp' INT                      # format version, currently 1
//! line    ::= '' | '#' …                      # blank / comment
//!           | 'step' LABEL RULE (KEY '=' value)*
//! value   ::= '{' text '}'                    # assertion / expr / command
//!           | WORD (',' WORD)*                # labels, identifiers, ints
//! ```
//!
//! `LABEL`, `RULE`, `KEY` and `WORD` are runs of `[A-Za-z0-9_.·-]`; braced
//! text runs to the *matching* `}` — braces nest, so commands spelling
//! loop/choice blocks (`{ C }*`, `{ C1 } + { C2 }`) round-trip. One step
//! per line; the **last** step is the proof's root.

use std::fmt;

/// The rule names accepted in scripts, with the paper figure each comes
/// from. Shared by the elaborator (dispatch), the emitter (serialization)
/// and the CLI/README documentation.
pub const RULE_TABLE: &[(&str, &str)] = &[
    ("skip", "Fig. 2 Skip"),
    ("seq", "Fig. 2 Seq"),
    ("choice", "Fig. 2 Choice"),
    ("cons", "Fig. 2 Cons"),
    ("cons-pre", "Fig. 2 Cons (precondition only)"),
    ("exists", "Fig. 2 Exist"),
    ("iter", "Fig. 2 Iter"),
    ("assign-s", "Fig. 3 AssignS"),
    ("havoc-s", "Fig. 3 HavocS"),
    ("assume-s", "Fig. 3 AssumeS"),
    ("while-sync", "Fig. 5 WhileSync"),
    ("if-sync", "Fig. 5 IfSync"),
    ("while-forall-exists", "Fig. 5 While-∀*∃*"),
    ("while-exists", "Fig. 5 While-∃"),
    ("while-desugared", "Fig. 5 WhileDesugared"),
    ("and", "Fig. 11 And"),
    ("or", "Fig. 11 Or"),
    ("union", "Fig. 11 Union"),
    ("big-union", "Fig. 11 BigUnion"),
    ("indexed-union", "Fig. 11 IndexedUnion"),
    ("frame-safe", "Fig. 11 FrameSafe"),
    ("specialize", "Fig. 11 Specialize"),
    ("lupdate-s", "Fig. 11 LUpdateS"),
    ("true", "Fig. 11 True"),
    ("false", "Fig. 11 False"),
    ("empty", "Fig. 11 Empty"),
    ("forall", "Fig. 11 Forall"),
    ("frame-t", "Fig. 14 Frame(⇓)"),
    ("while-sync-term", "Fig. 14 WhileSyncTerm"),
    ("oracle", "semantic admission (Def. 5)"),
];

/// A parsed argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arg {
    /// Braced free text `{…}` — an assertion, expression, command or note,
    /// parsed by the elaborator with the matching surface parser.
    Text(String),
    /// Bare words — step labels, identifiers or integers. A comma-separated
    /// list parses into multiple words.
    Words(Vec<String>),
}

/// One `step` line.
#[derive(Clone, Debug)]
pub struct Step {
    /// The step's label, referenced by later steps.
    pub label: String,
    /// Rule name (see [`RULE_TABLE`]).
    pub rule: String,
    /// Named arguments in source order.
    pub args: Vec<(String, Arg)>,
    /// 1-based source line, for error spans.
    pub line: usize,
}

/// A parsed `.hhlp` script: an ordered list of steps, last one the root.
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// The steps, in source order.
    pub steps: Vec<Step>,
}

/// Error produced by script parsing or elaboration, spanning the offending
/// source position.
#[derive(Clone, Debug)]
pub struct ScriptError {
    /// 1-based source line (0 for file-level errors).
    pub line: usize,
    /// 1-based column, when known (0 otherwise).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (0, _) => write!(f, "proof script error: {}", self.message),
            (l, 0) => write!(f, "proof script error at line {l}: {}", self.message),
            (l, c) => write!(
                f,
                "proof script error at line {l}, col {c}: {}",
                self.message
            ),
        }
    }
}

impl std::error::Error for ScriptError {}

pub(crate) fn err<T>(
    line: usize,
    col: usize,
    message: impl Into<String>,
) -> Result<T, ScriptError> {
    Err(ScriptError {
        line,
        col,
        message: message.into(),
    })
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '·')
}

/// Cursor over one source line, tracking the column for error spans.
struct Cursor<'a> {
    line: usize,
    src: &'a str,
    /// Byte offset into `src`.
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn col(&self) -> usize {
        self.src[..self.pos].chars().count() + 1
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn word(&mut self, what: &str) -> Result<&'a str, ScriptError> {
        self.skip_ws();
        let start = self.pos;
        let end = self
            .rest()
            .find(|c| !is_word_char(c))
            .map_or(self.src.len(), |i| start + i);
        if end == start {
            return err(self.line, self.col(), format!("expected {what}"));
        }
        self.pos = end;
        Ok(&self.src[start..end])
    }

    fn value(&mut self) -> Result<Arg, ScriptError> {
        self.skip_ws();
        if self.rest().starts_with('{') {
            // Braces nest: command text spells loop/choice blocks as
            // `{ C }* ` / `{ C1 } + { C2 }`, so the value runs to the
            // *matching* close brace, not the first one.
            let start = self.pos + 1;
            let mut depth = 0usize;
            for (i, c) in self.rest().char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            let end = self.pos + i;
                            self.pos = end + 1;
                            return Ok(Arg::Text(self.src[start..end].trim().to_owned()));
                        }
                    }
                    _ => {}
                }
            }
            err(self.line, self.col(), "unterminated `{`")
        } else {
            let mut words = vec![self.word("argument value")?.to_owned()];
            while self.rest().starts_with(',') {
                self.pos += 1;
                words.push(self.word("argument value after `,`")?.to_owned());
            }
            Ok(Arg::Words(words))
        }
    }
}

/// Parses a `.hhlp` script.
///
/// # Errors
///
/// [`ScriptError`] spanning the first offending line and column.
///
/// # Examples
///
/// ```
/// use hhl_proofs::parse_script;
/// let s = parse_script("hhlp 1\n# Fig. 2 Skip\nstep s1 skip p={low(l)}\n").unwrap();
/// assert_eq!(s.steps.len(), 1);
/// assert_eq!(s.steps[0].rule, "skip");
/// ```
pub fn parse_script(src: &str) -> Result<Script, ScriptError> {
    let mut steps = Vec::new();
    let mut seen_content = false;
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut cur = Cursor {
            line,
            src: raw,
            pos: 0,
        };
        let head = cur.word("`step` (or a `hhlp <version>` header)")?;
        if head == "hhlp" {
            if seen_content {
                return err(line, 1, "`hhlp` header must be the first content line");
            }
            seen_content = true;
            let version = cur.word("format version")?;
            if version != "1" {
                return err(
                    line,
                    cur.col(),
                    format!("unsupported format version {version:?} (this tool reads hhlp 1)"),
                );
            }
            if !cur.at_end() {
                return err(line, cur.col(), "trailing input after `hhlp` header");
            }
            continue;
        }
        seen_content = true;
        if head != "step" {
            return err(line, 1, format!("expected `step`, found {head:?}"));
        }
        let label = cur.word("step label")?.to_owned();
        let rule = cur.word("rule name")?.to_owned();
        let mut args = Vec::new();
        while !cur.at_end() {
            let key = cur.word("argument key")?.to_owned();
            cur.skip_ws();
            if !cur.rest().starts_with('=') {
                return err(
                    cur.line,
                    cur.col(),
                    format!("expected `=` after key `{key}`"),
                );
            }
            cur.pos += 1;
            if args.iter().any(|(k, _)| *k == key) {
                return err(cur.line, cur.col(), format!("duplicate argument `{key}`"));
            }
            args.push((key, cur.value()?));
        }
        steps.push(Step {
            label,
            rule,
            args,
            line,
        });
    }
    if steps.is_empty() {
        return err(0, 0, "empty proof script: no `step` lines");
    }
    Ok(Script { steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_steps_with_mixed_args() {
        let s = parse_script(
            "hhlp 1\n\
             step a1 assign-s x=l e={l * 2} post={low(l)}\n\
             step root cons pre={low(l)} post={low(l)} from=a1\n",
        )
        .unwrap();
        assert_eq!(s.steps.len(), 2);
        assert_eq!(s.steps[0].label, "a1");
        assert_eq!(
            s.steps[0].args[1],
            ("e".to_owned(), Arg::Text("l * 2".to_owned()))
        );
        assert_eq!(
            s.steps[1].args[2],
            ("from".to_owned(), Arg::Words(vec!["a1".to_owned()]))
        );
        assert_eq!(s.steps[1].line, 3);
    }

    #[test]
    fn braced_values_nest() {
        // Command text spells loops as `{ C }*` — the value must run to the
        // matching brace, not the first `}` (regression: oracle steps over
        // loop programs were unparseable).
        let s = parse_script(
            "step s oracle pre={true} cmd={{ assume x > 0; x := x - 1 }*; assume !(x > 0)} \
             post={true} note={admitted}\n",
        )
        .unwrap();
        assert_eq!(
            s.steps[0].args[1],
            (
                "cmd".to_owned(),
                Arg::Text("{ assume x > 0; x := x - 1 }*; assume !(x > 0)".to_owned())
            )
        );
    }

    #[test]
    fn parses_comma_separated_premises() {
        let s = parse_script("step s seq premises=a,b,c\n").unwrap();
        let Arg::Words(ws) = &s.steps[0].args[0].1 else {
            panic!("premises must be words");
        };
        assert_eq!(ws, &["a", "b", "c"]);
    }

    #[test]
    fn spans_point_at_the_offense() {
        let e = parse_script("step s1 skip p={low(l)\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unterminated"), "{e}");

        let e = parse_script("step s1 skip p low(l)\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected `=`"), "{e}");

        let e = parse_script("hhlp 2\n").unwrap_err();
        assert!(e.message.contains("unsupported format version"), "{e}");

        let e = parse_script("walk s1 skip\n").unwrap_err();
        assert!(e.message.contains("expected `step`"), "{e}");
    }

    #[test]
    fn rejects_duplicate_keys_and_empty_scripts() {
        let e = parse_script("step s1 skip p={true} p={false}\n").unwrap_err();
        assert!(e.message.contains("duplicate argument"), "{e}");
        assert!(parse_script("# only comments\n").is_err());
    }

    #[test]
    fn header_must_lead() {
        let e = parse_script("step s1 skip p={true}\nhhlp 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("first content line"), "{e}");
    }

    #[test]
    fn rule_table_is_deduplicated() {
        let mut names: Vec<&str> = RULE_TABLE.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULE_TABLE.len());
    }
}
