//! Certificate sharding: splitting an elaborated derivation into
//! independently checkable, fingerprinted obligation shards.
//!
//! A `.hhlp` certificate elaborates into one [`Derivation`] tree, but its
//! *semantic* obligations — per-rule entailments, `Oracle` admissions, `⊢⇓`
//! discharges, per-index members of `iter`/`while-desugared` premise
//! families — are mutually independent (each is a self-contained sweep over
//! the finite model). [`shard_derivation`] walks the tree once
//! ([`hhl_core::proof::extract_obligations`]), performing every structural
//! check, and returns the obligations as [`ObligationShard`]s ready to fan
//! across a worker pool.
//!
//! Each shard carries a **stable fingerprint** over the rule id, the
//! obligation payload (assertions hashed structurally via
//! [`hhl_assert::fp_assertion`], commands via the hash-consed
//! [`hhl_lang::fp_cmd_id`] interned-tree lookup), the captured meta-variable
//! scope, and the context's model fingerprint plus checking caps. Two
//! consequences the drivers build on:
//!
//! * **intra-run deduplication** — a premise referenced by label `k` times
//!   elaborates into `k` clones, and the sequential checker discharges each
//!   clone separately; equal fingerprints identify the copies, so a
//!   sharding driver discharges one representative per distinct
//!   fingerprint (the per-loop family members of a constant-invariant
//!   `iter`/`while-desugared` certificate collapse the same way);
//! * **cross-run reuse** — a persistent obligation store keyed by shard
//!   fingerprint re-checks only the shards an edit actually moved (see the
//!   `hhl-driver` verdict store's obligation records).
//!
//! Soundness of both reuses rests on the fingerprint covering *everything*
//! the discharge result depends on; the shard-fingerprint property suite
//! (`tests/fingerprint_props.rs`) pins stability and sensitivity down.

use hhl_core::proof::{
    extract_obligations, CheckStats, Derivation, ObligationKind, ProofContext, ProofError,
    SemanticObligation,
};
use hhl_core::Triple;
use hhl_lang::{fp_cmd_id, fp_expr, fp_symbols, intern_cmd, Fingerprint, StableHasher};

use hhl_assert::fp_assertion;

/// Schema tag folded into every shard fingerprint. Bump whenever the hash
/// coverage *or* the discharge semantics change, so stale obligation
/// records invalidate wholesale.
pub const SHARD_FP_SCHEMA: &str = "hhl-oblig-fp v1";

/// One independently checkable unit of a certificate.
#[derive(Clone, Debug)]
pub struct ObligationShard {
    /// Stable fingerprint of the obligation under the checking context.
    pub fingerprint: Fingerprint,
    /// The obligation itself (its `seq` is the sequential discharge order).
    pub obligation: SemanticObligation,
}

/// The shard decomposition of a derivation.
#[derive(Debug)]
pub struct ShardPlan {
    /// All semantic obligations, in sequential discharge order,
    /// fingerprinted under the context.
    pub shards: Vec<ObligationShard>,
    /// Walk statistics; on `Ok` outcomes these equal the [`CheckStats`] a
    /// fully successful sequential check reports.
    pub stats: CheckStats,
    /// The conclusion triple, or the structural error the walk hit. Per the
    /// soundness contract, a structural error only surfaces to the user
    /// when every collected shard discharges — an earlier failing shard is
    /// what the sequential checker would have reported.
    pub outcome: Result<Triple, ProofError>,
}

/// Hashes the parts of a triple an obligation's discharge observes: the
/// assertions structurally, the command via its hash-consed interned id.
fn fp_triple(h: &mut StableHasher, t: &Triple, slack: u32) {
    fp_assertion(h, &t.pre, slack);
    let id = intern_cmd(&t.cmd);
    h.write_fingerprint(fp_cmd_id(id).expect("id was interned this call"));
    fp_assertion(h, &t.post, slack);
}

/// The stable fingerprint of one obligation under a checking context.
///
/// Covers the schema tag, the model ([`ValidityConfig::stable_fingerprint`]
/// — universe, finitized semantics, candidate-set and evaluation knobs),
/// the context caps that shape scope enumeration, the raising rule, the
/// captured scope (by symbol *name*), and the kind-specific payload.
/// Deliberately excludes the obligation's `seq`: inserting or removing an
/// unrelated proof step must not invalidate the records of untouched
/// obligations.
///
/// [`ValidityConfig::stable_fingerprint`]: hhl_core::ValidityConfig::stable_fingerprint
pub fn shard_fingerprint(ob: &SemanticObligation, ctx: &ProofContext) -> Fingerprint {
    let slack = ctx.validity.check.eval.family_slack;
    let mut h = StableHasher::new();
    h.write_str(SHARD_FP_SCHEMA);
    h.write_fingerprint(ctx.validity.stable_fingerprint());
    h.write_usize(ctx.scope_cap);
    h.write_usize(ctx.linking_cap);
    h.write_str(ob.rule);
    fp_symbols(&mut h, &ob.scope.vals);
    fp_symbols(&mut h, &ob.scope.states);
    match &ob.kind {
        ObligationKind::Entailment { p, q } => {
            h.write_u8(0);
            fp_assertion(&mut h, p, slack);
            fp_assertion(&mut h, q, slack);
        }
        ObligationKind::Valid { triple } => {
            h.write_u8(1);
            fp_triple(&mut h, triple, slack);
        }
        ObligationKind::Termination { triple } => {
            h.write_u8(2);
            fp_triple(&mut h, triple, slack);
        }
        ObligationKind::VariantDecrease { variant, body } => {
            h.write_u8(3);
            h.write_fingerprint(fp_expr(variant));
            fp_triple(&mut h, body, slack);
        }
    }
    h.finish()
}

/// Walks `d` once, checking every structural side condition and returning
/// its semantic obligations as fingerprinted shards (see the module docs).
///
/// # Examples
///
/// ```
/// use hhl_assert::Universe;
/// use hhl_core::proof::ProofContext;
/// use hhl_core::ValidityConfig;
/// use hhl_proofs::{compile_script, shard_derivation};
///
/// let proof = compile_script(
///     "hhlp 1\n\
///      step a skip p={low(l)}\n\
///      step root cons pre={low(l)} post={true} from=a\n",
/// )
/// .unwrap();
/// let ctx = ProofContext::new(ValidityConfig::new(Universe::int_cube(&["l"], 0, 1)));
/// let plan = shard_derivation(&proof, &ctx);
/// assert_eq!(plan.shards.len(), 2); // the two Cons entailments
/// assert!(plan.outcome.is_ok());
/// ```
pub fn shard_derivation(d: &Derivation, ctx: &ProofContext) -> ShardPlan {
    let extraction = extract_obligations(d, ctx);
    let shards = extraction
        .obligations
        .into_iter()
        .map(|obligation| ObligationShard {
            fingerprint: shard_fingerprint(&obligation, ctx),
            obligation,
        })
        .collect();
    ShardPlan {
        shards,
        stats: extraction.stats,
        outcome: extraction.outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_script;
    use hhl_assert::Universe;
    use hhl_core::proof::check;
    use hhl_core::ValidityConfig;

    fn ctx(vars: &[&str], lo: i64, hi: i64) -> ProofContext {
        ProofContext::new(ValidityConfig::new(Universe::int_cube(vars, lo, hi)))
    }

    const WS: &str = "hhlp 1\n\
         step body assign-s x=i e={i + 1} post={low(i) && low(n)}\n\
         step body-pre cons pre={(low(i) && low(n)) && (forall <phi>. phi(i) < phi(n))} \
         post={low(i) && low(n)} from=body\n\
         step loop while-sync guard={i < n} inv={low(i) && low(n)} body=body-pre\n\
         step root cons pre={low(i) && low(n)} post={low(i)} from=loop\n";

    #[test]
    fn plan_matches_sequential_stats_and_conclusion() {
        let proof = compile_script(WS).unwrap();
        let ctx = ctx(&["i", "n"], 0, 1);
        let plan = shard_derivation(&proof, &ctx);
        let checked = check(&proof, &ctx).unwrap();
        assert_eq!(plan.stats, checked.stats);
        assert_eq!(plan.outcome.unwrap(), checked.conclusion);
        assert_eq!(plan.shards.len(), checked.stats.entailments);
    }

    #[test]
    fn duplicate_premise_references_share_fingerprints() {
        // `and l=p r=p` clones the oracle premise: two shards, one
        // fingerprint — the dedupe a sharding driver exploits.
        let proof = compile_script(
            "hhlp 1\n\
             step p oracle pre={true} cmd={x := x + 1} post={true} note={n}\n\
             step root and l=p r=p\n",
        )
        .unwrap();
        let ctx = ctx(&["x"], 0, 1);
        let plan = shard_derivation(&proof, &ctx);
        assert_eq!(plan.shards.len(), 2);
        assert_eq!(plan.shards[0].fingerprint, plan.shards[1].fingerprint);
        assert_eq!(plan.shards[0].obligation.seq, 0);
        assert_eq!(plan.shards[1].obligation.seq, 1);
    }

    #[test]
    fn fingerprints_cover_the_model() {
        let proof = compile_script(WS).unwrap();
        let narrow = shard_derivation(&proof, &ctx(&["i", "n"], 0, 1));
        let wide = shard_derivation(&proof, &ctx(&["i", "n"], 0, 2));
        for (a, b) in narrow.shards.iter().zip(&wide.shards) {
            assert_ne!(
                a.fingerprint, b.fingerprint,
                "a model change must move every shard fingerprint"
            );
        }
    }

    #[test]
    fn structural_errors_keep_the_collected_prefix() {
        // The seq middle mismatch is found *after* the first premise's
        // obligations were collected.
        let proof = compile_script(
            "hhlp 1\n\
             step a cons pre={low(x)} post={low(x)} from=skip0\n\
             step skip0 skip p={true}\n",
        );
        // skip0 referenced before definition: elaboration error, fine — use
        // a proper mid-mismatch instead.
        assert!(proof.is_err());
        let proof = compile_script(
            "hhlp 1\n\
             step s0 skip p={true}\n\
             step a cons pre={low(x)} post={true} from=s0\n\
             step b skip p={low(y)}\n\
             step root seq premises=a,b\n",
        )
        .unwrap();
        let ctx = ctx(&["x", "y"], 0, 1);
        let plan = shard_derivation(&proof, &ctx);
        assert_eq!(plan.shards.len(), 2, "cons obligations precede the error");
        let err = plan.outcome.unwrap_err();
        assert!(err.to_string().contains("middle mismatch"), "{err}");
    }
}
