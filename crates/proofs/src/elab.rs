//! Elaboration: resolving a parsed [`Script`] into a checkable
//! [`Derivation`] tree.
//!
//! Steps are processed in source order; premise references (`from=…`,
//! `premises=…`, `body=…`) must point at earlier labels, which makes the
//! script a topologically-sorted linearization of the proof DAG. Embedded
//! text arguments are parsed with the workspace's surface parsers
//! (`hhl_assert::parse_assertion`, `hhl_lang::parse_expr`/`parse_cmd`).
//! Indexed arguments (`inv.0=…`, `inv.1=…`) back the `Family` /
//! `DerivationFamily` premises of the `iter`, `while-desugared` and
//! `indexed-union` rules.

use std::collections::HashMap;

use hhl_assert::{parse_assertion, Assertion, Family};
use hhl_core::proof::{Derivation, DerivationFamily};
use hhl_core::Triple;
use hhl_lang::{parse_cmd, parse_expr, Cmd, Expr, Symbol};

use crate::script::{err, parse_script, Arg, Script, ScriptError, Step, RULE_TABLE};

/// Per-step argument reader that tracks which keys were consumed, so typo'd
/// or superfluous arguments are reported instead of silently ignored.
struct Args<'a> {
    step: &'a Step,
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(step: &'a Step) -> Args<'a> {
        Args {
            step,
            used: vec![false; step.args.len()],
        }
    }

    fn line(&self) -> usize {
        self.step.line
    }

    fn lookup(&mut self, key: &str) -> Option<&'a Arg> {
        let i = self.step.args.iter().position(|(k, _)| k == key)?;
        self.used[i] = true;
        Some(&self.step.args[i].1)
    }

    fn text(&mut self, key: &str) -> Result<&'a str, ScriptError> {
        match self.lookup(key) {
            Some(Arg::Text(t)) => Ok(t),
            Some(Arg::Words(_)) => err(
                self.line(),
                1,
                format!(
                    "argument `{key}` of `{}` must be braced text `{{…}}`",
                    self.step.rule
                ),
            ),
            None => err(
                self.line(),
                1,
                format!("rule `{}` requires argument `{key}`", self.step.rule),
            ),
        }
    }

    fn opt_text(&mut self, key: &str) -> Result<Option<&'a str>, ScriptError> {
        match self.lookup(key) {
            Some(Arg::Text(t)) => Ok(Some(t)),
            Some(Arg::Words(_)) => err(
                self.line(),
                1,
                format!(
                    "argument `{key}` of `{}` must be braced text `{{…}}`",
                    self.step.rule
                ),
            ),
            None => Ok(None),
        }
    }

    fn word(&mut self, key: &str) -> Result<&'a str, ScriptError> {
        match self.lookup(key) {
            Some(Arg::Words(ws)) if ws.len() == 1 => Ok(&ws[0]),
            Some(_) => err(
                self.line(),
                1,
                format!(
                    "argument `{key}` of `{}` must be a single bare word",
                    self.step.rule
                ),
            ),
            None => err(
                self.line(),
                1,
                format!("rule `{}` requires argument `{key}`", self.step.rule),
            ),
        }
    }

    fn words(&mut self, key: &str) -> Result<&'a [String], ScriptError> {
        match self.lookup(key) {
            Some(Arg::Words(ws)) => Ok(ws),
            Some(Arg::Text(_)) => err(
                self.line(),
                1,
                format!(
                    "argument `{key}` of `{}` must be bare labels",
                    self.step.rule
                ),
            ),
            None => err(
                self.line(),
                1,
                format!("rule `{}` requires argument `{key}`", self.step.rule),
            ),
        }
    }

    fn assertion(&mut self, key: &str) -> Result<Assertion, ScriptError> {
        let src = self.text(key)?;
        parse_assertion(src)
            .map_err(|e| bad(self.line(), format!("argument `{key}`: {e} in {src:?}")))
    }

    fn expr(&mut self, key: &str) -> Result<Expr, ScriptError> {
        let src = self.text(key)?;
        parse_expr(src).map_err(|e| bad(self.line(), format!("argument `{key}`: {e} in {src:?}")))
    }

    fn cmd(&mut self, key: &str) -> Result<Cmd, ScriptError> {
        let src = self.text(key)?;
        parse_cmd(src).map_err(|e| bad(self.line(), format!("argument `{key}`: {e} in {src:?}")))
    }

    fn symbol(&mut self, key: &str) -> Result<Symbol, ScriptError> {
        Ok(Symbol::new(self.word(key)?))
    }

    fn u32(&mut self, key: &str) -> Result<u32, ScriptError> {
        let w = self.word(key)?;
        w.parse::<u32>().map_err(|_| {
            bad(
                self.line(),
                format!("argument `{key}`: expected an integer, got {w:?}"),
            )
        })
    }

    /// A `bound=`/`inv-bound=` argument, capped at [`MAX_FAMILY_BOUND`] so a
    /// hostile certificate cannot trigger integer overflow (`bound + 1`) or
    /// unbounded family allocation during elaboration.
    fn family_bound(&mut self, key: &str) -> Result<u32, ScriptError> {
        let b = self.u32(key)?;
        if b > MAX_FAMILY_BOUND {
            return Err(bad(
                self.line(),
                format!(
                    "argument `{key}`: bound {b} exceeds the supported maximum {MAX_FAMILY_BOUND}"
                ),
            ));
        }
        Ok(b)
    }

    fn opt_family_bound(&mut self, key: &str) -> Result<Option<u32>, ScriptError> {
        if self.step.args.iter().any(|(k, _)| k == key) {
            Ok(Some(self.family_bound(key)?))
        } else {
            Ok(None)
        }
    }

    /// `prefix.0` … `prefix.{upto}`, all required.
    fn assertion_family(&mut self, prefix: &str, upto: u32) -> Result<Vec<Assertion>, ScriptError> {
        (0..=upto)
            .map(|i| self.assertion(&format!("{prefix}.{i}")))
            .collect()
    }

    fn finish(self) -> Result<(), ScriptError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return err(
                    self.line(),
                    1,
                    format!(
                        "unknown argument `{}` for rule `{}`",
                        self.step.args[i].0, self.step.rule
                    ),
                );
            }
        }
        Ok(())
    }
}

/// Largest accepted premise/invariant family bound. Far above any checkable
/// certificate (every index is elaborated and checked individually), and
/// small enough that `bound + 1` and per-index allocation stay safe on
/// untrusted input.
const MAX_FAMILY_BOUND: u32 = 4096;

/// The optional, explicit `inv-bound=` must equal `bound` (emitted
/// certificates always spell it out). Soundness depends on this: the
/// checker only constrains invariant members reached by a checked premise,
/// so a wider family would put unconstrained members (e.g. `false`) into
/// the conclusion's `⨂ₙ Iₙ`, making it unsatisfiable on the finite model
/// and every post-entailment vacuously dischargeable.
fn check_inv_bound(a: &mut Args<'_>, rule: &str, bound: u32) -> Result<(), ScriptError> {
    if let Some(inv_bound) = a.opt_family_bound("inv-bound")? {
        if inv_bound != bound {
            return Err(bad(
                a.line(),
                format!(
                    "`{rule}` requires inv-bound ({inv_bound}) == bound ({bound}): invariant \
                     members beyond the checked premises would be unconstrained"
                ),
            ));
        }
    }
    Ok(())
}

fn bad(line: usize, message: String) -> ScriptError {
    ScriptError {
        line,
        col: 0,
        message,
    }
}

/// A `Family` backed by explicit members; indices past the end clamp to the
/// last member (the checker only samples within the declared bound).
fn vec_family(bound: u32, members: Vec<Assertion>) -> Family {
    Family::new(bound, move |n| {
        members[(n as usize).min(members.len() - 1)].clone()
    })
}

fn vec_derivation_family(bound: u32, members: Vec<Derivation>) -> DerivationFamily {
    DerivationFamily::new(bound, move |n| {
        members[(n as usize).min(members.len() - 1)].clone()
    })
}

/// Cap on the elaborated proof-tree size. Scripts reference premises by
/// label (a DAG), but [`Derivation`] is a tree, so each reference *clones*
/// its premise — a step referencing the previous step twice doubles the
/// tree, and a ~20-line certificate could otherwise expand to millions of
/// nodes. Sizes are tracked per label, so the cap is enforced without ever
/// materializing an oversized tree.
const MAX_PROOF_NODES: u64 = 100_000;

/// Cap on the elaborated proof-tree *depth*. Clone, check and drop of a
/// [`Derivation`] all recurse once per tree level, so a deep linear
/// certificate (e.g. a ~90k-step `cons-pre` chain, well under the node cap)
/// would otherwise abort the replayer with a stack overflow. 512 keeps the
/// worst-case recursion inside even the 2 MiB stacks Rust gives spawned
/// (test) threads in debug builds, while dwarfing any real certificate.
const MAX_PROOF_DEPTH: u32 = 512;

struct Elab<'a> {
    by_label: HashMap<&'a str, Derivation>,
    /// Elaborated tree size of each labelled step.
    sizes: HashMap<&'a str, u64>,
    /// Elaborated tree depth of each labelled step.
    depths: HashMap<&'a str, u32>,
    /// Nodes the step currently being elaborated has absorbed via premise
    /// references; reset per step, checked against [`MAX_PROOF_NODES`].
    pending: u64,
    /// Deepest premise the step currently being elaborated references;
    /// reset per step, checked against [`MAX_PROOF_DEPTH`].
    pending_depth: u32,
}

impl<'a> Elab<'a> {
    fn premise(&mut self, args: &mut Args<'_>, key: &str) -> Result<Derivation, ScriptError> {
        let label = args.word(key)?;
        self.resolve(args.line(), label)
    }

    fn resolve(&mut self, line: usize, label: &str) -> Result<Derivation, ScriptError> {
        let Some(d) = self.by_label.get(label) else {
            return Err(bad(
                line,
                format!("premise `{label}` is not defined by an earlier step"),
            ));
        };
        let size = self.sizes.get(label).copied().unwrap_or(1);
        let depth = self.depths.get(label).copied().unwrap_or(1);
        self.pending = self.pending.saturating_add(size);
        self.pending_depth = self.pending_depth.max(depth);
        if self.pending > MAX_PROOF_NODES {
            return Err(bad(
                line,
                format!(
                    "proof tree exceeds {MAX_PROOF_NODES} nodes (premise references clone \
                     their subtree; this certificate duplicates premises explosively)"
                ),
            ));
        }
        Ok(d.clone())
    }

    fn premise_list(
        &mut self,
        args: &mut Args<'_>,
        key: &str,
        at_least: usize,
    ) -> Result<Vec<Derivation>, ScriptError> {
        let line = args.line();
        let labels = args.words(key)?.to_vec();
        if labels.len() < at_least {
            return err(
                line,
                1,
                format!("`{key}` needs at least {at_least} premise label(s)"),
            );
        }
        labels.iter().map(|l| self.resolve(line, l)).collect()
    }

    /// Charges `levels` extra tree levels (and as many nodes) to the step
    /// being elaborated — for rules that nest one level per premise (`seq`
    /// right-nests its chain) or interpose extra nodes (`while-desugared`'s
    /// exit `Cons`). Erroring here, *before* the step's tree is assembled,
    /// is what keeps an over-deep tree from ever existing (even dropping
    /// one would overflow the stack).
    fn charge_depth(&mut self, line: usize, levels: u32) -> Result<(), ScriptError> {
        self.pending_depth = self.pending_depth.saturating_add(levels);
        self.pending = self.pending.saturating_add(u64::from(levels));
        if self.pending_depth >= MAX_PROOF_DEPTH {
            return Err(bad(
                line,
                format!(
                    "proof tree depth exceeds the maximum {MAX_PROOF_DEPTH} \
                     (the checker recurses once per level)"
                ),
            ));
        }
        Ok(())
    }

    /// Exactly `bound + 1` premises, as the family rules require.
    fn premise_family(
        &mut self,
        args: &mut Args<'_>,
        key: &str,
        rule: &str,
        bound: u32,
    ) -> Result<Vec<Derivation>, ScriptError> {
        let need = bound as usize + 1;
        let premises = self.premise_list(args, key, need)?;
        if premises.len() != need {
            return err(
                args.line(),
                1,
                format!("`{rule}` with bound={bound} needs exactly {need} premises"),
            );
        }
        Ok(premises)
    }

    fn boxed(&mut self, args: &mut Args<'_>, key: &str) -> Result<Box<Derivation>, ScriptError> {
        Ok(Box::new(self.premise(args, key)?))
    }

    fn step(&mut self, step: &'a Step) -> Result<Derivation, ScriptError> {
        let mut a = Args::new(step);
        let d = match step.rule.as_str() {
            "skip" => Derivation::Skip {
                p: a.assertion("p")?,
            },
            "seq" => {
                let premises = self.premise_list(&mut a, "premises", 2)?;
                // seq_all right-nests: one `Seq` level per premise beyond
                // the first, so a wide one-line chain is as deep as a long
                // `cons` chain.
                self.charge_depth(step.line, premises.len() as u32 - 1)?;
                Derivation::seq_all(premises)
            }
            "choice" => Derivation::Choice(self.boxed(&mut a, "l")?, self.boxed(&mut a, "r")?),
            "cons" => Derivation::Cons {
                pre: a.assertion("pre")?,
                post: a.assertion("post")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "cons-pre" => Derivation::ConsPre {
                pre: a.assertion("pre")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "assign-s" => Derivation::AssignS {
                x: a.symbol("x")?,
                e: a.expr("e")?,
                post: a.assertion("post")?,
            },
            "havoc-s" => Derivation::HavocS {
                x: a.symbol("x")?,
                post: a.assertion("post")?,
            },
            "assume-s" => Derivation::AssumeS {
                b: a.expr("b")?,
                post: a.assertion("post")?,
            },
            "exists" => Derivation::Exist {
                y: a.symbol("y")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "forall" => Derivation::Forall {
                y: a.symbol("y")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "iter" => {
                let bound = a.family_bound("bound")?;
                check_inv_bound(&mut a, "iter", bound)?;
                let members = a.assertion_family("inv", bound + 1)?;
                let premises = self.premise_family(&mut a, "premises", "iter", bound)?;
                Derivation::Iter {
                    inv: vec_family(bound, members),
                    premises: vec_derivation_family(bound, premises),
                }
            }
            "while-desugared" => {
                let guard = a.expr("guard")?;
                let bound = a.family_bound("bound")?;
                check_inv_bound(&mut a, "while-desugared", bound)?;
                let members = a.assertion_family("inv", bound + 1)?;
                let premises = self.premise_family(&mut a, "premises", "while-desugared", bound)?;
                let inv = vec_family(bound, members);
                // The exit premise's precondition must be the very `⨂ₙ Iₙ`
                // the checker constructs (families compare by pointer), so
                // the elaborator interposes a `Cons` that strengthens from
                // it; the entailment is discharged semantically.
                // The interposed `ConsPre` is one extra tree level.
                self.charge_depth(step.line, 1)?;
                let exit = Derivation::ConsPre {
                    pre: Assertion::big_otimes(inv.clone()),
                    inner: Box::new(self.premise(&mut a, "exit")?),
                };
                Derivation::WhileDesugared {
                    guard,
                    inv,
                    premises: vec_derivation_family(bound, premises),
                    exit: Box::new(exit),
                }
            }
            "while-sync" => Derivation::WhileSync {
                guard: a.expr("guard")?,
                inv: a.assertion("inv")?,
                body: self.boxed(&mut a, "body")?,
            },
            "while-sync-term" => Derivation::WhileSyncTerm {
                guard: a.expr("guard")?,
                inv: a.assertion("inv")?,
                variant: a.expr("variant")?,
                body: self.boxed(&mut a, "body")?,
            },
            "if-sync" => Derivation::IfSync {
                guard: a.expr("guard")?,
                pre: a.assertion("pre")?,
                post: a.assertion("post")?,
                then_d: self.boxed(&mut a, "then")?,
                else_d: self.boxed(&mut a, "else")?,
            },
            "while-forall-exists" => Derivation::WhileForallExists {
                guard: a.expr("guard")?,
                inv: a.assertion("inv")?,
                body_if: self.boxed(&mut a, "body")?,
                exit: self.boxed(&mut a, "exit")?,
            },
            "while-exists" => Derivation::WhileExists {
                guard: a.expr("guard")?,
                phi: a.symbol("phi")?,
                p_body: a.assertion("p")?,
                q_body: a.assertion("q")?,
                variant: a.expr("variant")?,
                v: a.symbol("v")?,
                decrease: self.boxed(&mut a, "decrease")?,
                rest: self.boxed(&mut a, "rest")?,
            },
            "and" => Derivation::And(self.boxed(&mut a, "l")?, self.boxed(&mut a, "r")?),
            "or" => Derivation::Or(self.boxed(&mut a, "l")?, self.boxed(&mut a, "r")?),
            "union" => Derivation::Union(self.boxed(&mut a, "l")?, self.boxed(&mut a, "r")?),
            "big-union" => Derivation::BigUnion(self.boxed(&mut a, "from")?),
            "indexed-union" => {
                let bound = a.family_bound("bound")?;
                let pre = a.assertion_family("pre", bound)?;
                let post = a.assertion_family("post", bound)?;
                let premises = self.premise_family(&mut a, "premises", "indexed-union", bound)?;
                Derivation::IndexedUnion {
                    pre_fam: vec_family(bound, pre),
                    post_fam: vec_family(bound, post),
                    premises: vec_derivation_family(bound, premises),
                }
            }
            "frame-safe" => Derivation::FrameSafe {
                frame: a.assertion("frame")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "frame-t" => Derivation::FrameT {
                frame: a.assertion("frame")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "specialize" => Derivation::Specialize {
                b: a.expr("b")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "lupdate-s" => Derivation::LUpdateS {
                t: a.symbol("t")?,
                e: a.expr("e")?,
                pre: a.assertion("pre")?,
                inner: self.boxed(&mut a, "from")?,
            },
            "true" => Derivation::True {
                pre: a.assertion("pre")?,
                cmd: a.cmd("cmd")?,
            },
            "false" => Derivation::False {
                cmd: a.cmd("cmd")?,
                post: a.assertion("post")?,
            },
            "empty" => Derivation::Empty { cmd: a.cmd("cmd")? },
            "oracle" => Derivation::Oracle {
                triple: Triple::new(a.assertion("pre")?, a.cmd("cmd")?, a.assertion("post")?),
                note: a
                    .opt_text("note")?
                    .unwrap_or("admitted by certificate")
                    .to_owned(),
            },
            other => {
                return err(
                    step.line,
                    1,
                    format!(
                        "unknown rule `{other}` (known rules: {})",
                        RULE_TABLE
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                )
            }
        };
        a.finish()?;
        Ok(d)
    }
}

/// Elaborates a parsed script into the derivation rooted at its last step.
///
/// # Errors
///
/// [`ScriptError`] on unknown rules, missing/superfluous/duplicate
/// arguments, undefined premise labels, or malformed embedded
/// assertions/expressions/commands.
///
/// # Examples
///
/// ```
/// use hhl_proofs::{elaborate, parse_script};
/// let script = parse_script(
///     "step a1 assign-s x=l e={l * 2} post={low(l)}\n\
///      step root cons pre={low(l)} post={low(l)} from=a1\n",
/// )
/// .unwrap();
/// let d = elaborate(&script).unwrap();
/// assert_eq!(d.rule_name(), "Cons");
/// ```
pub fn elaborate(script: &Script) -> Result<Derivation, ScriptError> {
    let mut elab = Elab {
        by_label: HashMap::new(),
        sizes: HashMap::new(),
        depths: HashMap::new(),
        pending: 0,
        pending_depth: 0,
    };
    let mut last = None;
    for step in &script.steps {
        if elab.by_label.contains_key(step.label.as_str()) {
            return err(
                step.line,
                1,
                format!("duplicate step label `{}`", step.label),
            );
        }
        elab.pending = 0;
        elab.pending_depth = 0;
        let d = elab.step(step)?;
        let depth = elab.pending_depth.saturating_add(1);
        if depth > MAX_PROOF_DEPTH {
            return err(
                step.line,
                1,
                format!(
                    "proof tree depth {depth} exceeds the maximum {MAX_PROOF_DEPTH} \
                     (the checker recurses once per level)"
                ),
            );
        }
        elab.sizes
            .insert(&step.label, elab.pending.saturating_add(1));
        elab.depths.insert(&step.label, depth);
        elab.by_label.insert(&step.label, d);
        last = Some(step.label.as_str());
    }
    last.and_then(|label| elab.by_label.remove(label))
        .ok_or_else(|| bad(0, "empty proof script".to_owned()))
}

/// Convenience: [`parse_script`] followed by [`elaborate`].
///
/// # Errors
///
/// [`ScriptError`] from either phase.
pub fn compile_script(src: &str) -> Result<Derivation, ScriptError> {
    elaborate(&parse_script(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhl_assert::Universe;
    use hhl_core::proof::{check, ProofContext};
    use hhl_core::ValidityConfig;

    fn ctx(vars: &[&str], lo: i64, hi: i64) -> ProofContext {
        ProofContext::new(ValidityConfig::new(Universe::int_cube(vars, lo, hi)))
    }

    #[test]
    fn family_bound_overflow_is_a_spanned_error() {
        // Regression: `bound=u32::MAX` must be a ScriptError, not an
        // `bound + 1` overflow panic (debug builds) on hostile input.
        let d = compile_script(
            "hhlp 1\n\
             step a skip p={true}\n\
             step r iter bound=4294967295 inv.0={true} premises=a\n",
        );
        let e = d.unwrap_err();
        assert!(e.message.contains("maximum"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn deep_linear_chains_are_rejected() {
        // Regression: a deep `cons-pre` chain stays under the node cap but
        // would blow the stack in the recursive clone/check/drop — the
        // depth cap must reject it with a spanned error, not a SIGABRT.
        // Runs on a dedicated big-stack thread: the cap is sized for the
        // binary's 8 MiB main thread, while Rust gives test threads 2 MiB.
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(|| {
                let mut s = String::from("hhlp 1\nstep s0 skip p={true}\n");
                for k in 1..=(MAX_PROOF_DEPTH + 1) {
                    s.push_str(&format!(
                        "step s{k} cons-pre pre={{true}} from=s{}\n",
                        k - 1
                    ));
                }
                let e = compile_script(&s).unwrap_err();
                assert!(e.message.contains("depth"), "{e}");
            })
            .expect("spawn test thread")
            .join()
            .expect("deep-chain elaboration must error, not abort");
    }

    #[test]
    fn wide_seq_chains_are_rejected() {
        // Regression: `seq` right-nests one level per premise, so a single
        // wide step is as deep as a long cons chain — a ~99k-premise seq
        // slipped under both caps (recorded depth 2, nodes ≤ 100k) and
        // aborted the replayer. The depth charge must fire *before* the
        // spine is assembled.
        let labels = vec!["s0"; 600].join(",");
        let s = format!("hhlp 1\nstep s0 skip p={{true}}\nstep root seq premises={labels}\n");
        let e = compile_script(&s).unwrap_err();
        assert!(e.message.contains("depth"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn exponential_premise_sharing_is_rejected() {
        // Regression: each `and l=sK r=sK` step doubles the elaborated tree
        // (premise references clone); without the node cap this ~20-line
        // certificate would expand to 2^20+ nodes and hang/OOM the replayer.
        let mut s = String::from("hhlp 1\nstep s0 skip p={true}\n");
        for k in 1..=20 {
            s.push_str(&format!("step s{k} and l=s{} r=s{}\n", k - 1, k - 1));
        }
        let e = compile_script(&s).unwrap_err();
        assert!(e.message.contains("nodes"), "{e}");
    }

    #[test]
    fn elaborates_and_checks_a_wp_chain() {
        let d = compile_script(
            "hhlp 1\n\
             step a2 assign-s x=l e={l + 1} post={low(l)}\n\
             step a1 assign-s x=l e={l * 2} post={forall <phi1>, <phi2>. phi1(l) + 1 == phi2(l) + 1}\n\
             step chain seq premises=a1,a2\n\
             step root cons pre={low(l)} post={low(l)} from=chain\n",
        )
        .unwrap();
        let checked = check(&d, &ctx(&["l"], 0, 1)).unwrap();
        assert_eq!(checked.stats.rules, 4);
        assert_eq!(checked.stats.entailments, 2);
    }

    #[test]
    fn elaborates_if_sync() {
        // {low(h)} if (h > 0) { l := 1 } else { l := 0 } {true}
        let d = compile_script(
            "step t assign-s x=l e={1} post={true}\n\
             step tc cons pre={low(h) && (forall <phi>. phi(h) > 0)} post={true} from=t\n\
             step e assign-s x=l e={0} post={true}\n\
             step ec cons pre={low(h) && (forall <phi>. !(h > 0)(phi))} post={true} from=e\n\
             step root if-sync guard={h > 0} pre={low(h)} post={true} then=tc else=ec\n",
        );
        // The `!(h > 0)(phi)` spelling is bogus on purpose: elaboration
        // must fail with a span, not panic.
        assert!(d.is_err());

        let d = compile_script(
            "step t assign-s x=l e={1} post={true}\n\
             step tc cons pre={low(h) && (forall <phi>. phi(h) > 0)} post={true} from=t\n\
             step e assign-s x=l e={0} post={true}\n\
             step ec cons pre={low(h) && (forall <phi>. !(phi(h) > 0))} post={true} from=e\n\
             step root if-sync guard={h > 0} pre={low(h)} post={true} then=tc else=ec\n",
        )
        .unwrap();
        let checked = check(&d, &ctx(&["h", "l"], 0, 1)).unwrap();
        assert_eq!(checked.conclusion.post, Assertion::tt());
    }

    #[test]
    fn elaborates_iter_families_from_indexed_args() {
        // ⊢ {true} (skip)* {⨂ₙ true} via Iter with Iₙ = true.
        let d = compile_script(
            "step p skip p={true}\n\
             step root iter bound=1 inv.0={true} inv.1={true} inv.2={true} premises=p,p\n",
        )
        .unwrap();
        let checked = check(&d, &ctx(&["x"], 0, 0)).unwrap();
        assert_eq!(checked.conclusion.cmd.to_string(), "(skip)*");
    }

    #[test]
    fn rejects_undefined_and_duplicate_labels() {
        let e = compile_script("step s seq premises=a,b\n").unwrap_err();
        assert!(e.message.contains("not defined"), "{e}");
        let e = compile_script("step s skip p={true}\nstep s skip p={true}\n").unwrap_err();
        assert!(e.message.contains("duplicate step label"), "{e}");
    }

    #[test]
    fn rejects_unknown_rules_and_unknown_args() {
        let e = compile_script("step s frobnicate p={true}\n").unwrap_err();
        assert!(e.message.contains("unknown rule"), "{e}");
        let e = compile_script("step s skip p={true} q={true}\n").unwrap_err();
        assert!(e.message.contains("unknown argument `q`"), "{e}");
        let e = compile_script("step s skip\n").unwrap_err();
        assert!(e.message.contains("requires argument `p`"), "{e}");
    }

    #[test]
    fn oracle_steps_check_semantically() {
        let d = compile_script(
            "step root oracle pre={low(x)} cmd={x := nonDet()} post={true} note={havoc erases}\n",
        )
        .unwrap();
        let checked = check(&d, &ctx(&["x"], 0, 1)).unwrap();
        assert_eq!(checked.stats.oracle_admissions, 1);
    }
}
