//! # hhl-proofs — textual proof certificates for Hyper Hoare Logic
//!
//! The in-memory [`Derivation`](hhl_core::proof::Derivation) trees checked
//! by `hhl_core::proof::check` exist only for one process lifetime. This
//! crate gives them a serialized form — the line-oriented `.hhlp` script
//! format — so proofs can be written by hand, saved, inspected, exchanged,
//! and replayed by an independent checker, the architecture of SMT proof
//! checkers such as carcara.
//!
//! A script is a sequence of labelled rule applications, each referencing
//! its premises by label; the final step is the root of the proof tree:
//!
//! ```text
//! hhlp 1
//! # {low(i) && low(n)} while (i < n) { i := i + 1 } {low(i)}
//! step body assign-s x=i e={i + 1} post={low(i) && low(n)}
//! step body-pre cons pre={(low(i) && low(n)) && (forall <phi>. phi(i) < phi(n))} post={low(i) && low(n)} from=body
//! step loop while-sync guard={i < n} inv={low(i) && low(n)} body=body-pre
//! step root cons pre={low(i) && low(n)} post={low(i)} from=loop
//! ```
//!
//! (the same certificate, with commentary, ships as
//! `examples/proofs/while_sync.hhlp`).
//!
//! The three layers:
//!
//! * [`parse_script`] — hand-rolled line parser with spanned errors
//!   ([`ScriptError`] carries line and column);
//! * [`elaborate`] — resolves a parsed [`Script`] into a `Derivation`,
//!   parsing embedded assertions/expressions/commands with the workspace's
//!   own surface parsers and building `DerivationFamily` premises from
//!   indexed arguments (`inv.0=…`, `inv.1=…`);
//! * [`emit_script`] — serializes any supported `Derivation` back to a
//!   canonical script, so `hhl prove --emit-proof` turns auto-built WP
//!   derivations into shareable certificates. `parse ∘ emit` is the
//!   identity up to formatting for derivations whose assertions originate
//!   from the surface parser (the parser normalizes top-level boolean
//!   structure of raw hyper-expressions onto assertion connectives, so a
//!   hand-built `Atom(a && b)` re-parses as the equivalent `And` node).
//!
//! Not serializable: the `Linking` rule (its premise is a closure over
//! concrete state pairs) — [`emit_script`] reports it via [`EmitError`].
//!
//! A fourth layer feeds the parallel/incremental replayers:
//! [`shard_derivation`] splits an elaborated derivation into
//! independently checkable, stably fingerprinted [`ObligationShard`]s
//! (per-rule semantic side conditions, per-index loop-family members), the
//! unit `hhl replay --jobs N` fans across workers, deduplicates, and
//! caches across processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elab;
mod emit;
mod script;
mod shard;

pub use elab::{compile_script, elaborate};
pub use emit::{ascii_assertion, ascii_cmd, emit_script, EmitError};
pub use script::{parse_script, Arg, Script, ScriptError, Step, RULE_TABLE};
pub use shard::{shard_derivation, shard_fingerprint, ObligationShard, ShardPlan, SHARD_FP_SCHEMA};
